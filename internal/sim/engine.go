// Package sim is a deterministic discrete-event simulation kernel.
//
// It provides a virtual clock, coroutine-style processes, FIFO resource
// servers with utilization accounting, bandwidth pipes, and condition
// signals. The Cudele cluster (clients, metadata servers, object storage
// daemons, monitor) is modeled as sim processes that execute the real
// metadata code paths while charging virtual time to simulated devices.
//
// Only one process runs at a time; the engine and the running process hand
// control back and forth over unbuffered channels, so simulations are fully
// deterministic for a given seed and schedule.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"cudele/internal/obs"
	"cudele/internal/runtime"
	"cudele/internal/trace"
)

// Time is a point in virtual time, in nanoseconds since simulation
// start. It aliases runtime.Time so virtual timestamps flow through the
// backend-neutral interfaces without conversion.
type Time = runtime.Time

// Duration is a span of virtual time in nanoseconds. It is convertible to
// and from time.Duration.
type Duration = time.Duration

// event is a scheduled callback. Events are stored by value in the queue
// so scheduling does not allocate (beyond amortized slice growth): the
// simulation schedules one event per operation step, making this the
// hottest allocation site in the whole substrate.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
}

// before orders events by time, then FIFO by sequence number. The (at,
// seq) pair is unique per event, so the pop order is a total order and
// does not depend on the heap's internal layout.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a binary min-heap of event values. It replaces
// container/heap to avoid both the per-event heap allocation and the
// interface{} boxing on every Push/Pop.
type eventQueue []event

func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the fn reference
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].before(&h[smallest]) {
			smallest = l
		}
		if r < n && h[r].before(&h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Engine owns the virtual clock and the event queue.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	running bool

	// yielded is signaled by a process when it blocks or finishes,
	// returning control to the engine loop.
	yielded chan struct{}

	procs   int // live process count, for leak detection
	live    map[*Proc]struct{}
	stopped bool

	// tracer is the span recorder every layer records into; nil (the
	// default) disables tracing with zero overhead. It lives on the
	// engine because the engine is the one object all simulated
	// components already share.
	tracer *trace.Recorder

	// flight is the chaos flight recorder; nil (the default) disables
	// it, and recording follows the same never-perturb contract as the
	// tracer.
	flight *obs.Flight

	// resources registers every Resource (and Pipe) created on this
	// engine so Run can finalize their busy-time integrals when the
	// event loop stops — without it, accounting is only updated on
	// state changes and a resource still held (or long idle) at the end
	// of a run reports a stale busyArea to raw snapshot readers.
	resources []*Resource
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// source is seeded deterministically with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:     rand.New(rand.NewSource(seed)),
		yielded: make(chan struct{}),
		live:    make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation processes (never concurrently).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Tracer returns the engine's span recorder; nil means tracing is
// disabled (a nil *trace.Recorder accepts and drops every call).
func (e *Engine) Tracer() *trace.Recorder { return e.tracer }

// SetTracer installs a span recorder. Pass nil to disable tracing.
// Recording charges no virtual time and consumes no randomness, so a
// traced engine executes the exact same schedule as an untraced one.
func (e *Engine) SetTracer(r *trace.Recorder) { e.tracer = r }

// Flight returns the chaos flight recorder; nil means recording is off.
func (e *Engine) Flight() *obs.Flight { return e.flight }

// SetFlight installs a flight recorder. Pass nil to disable it. Like
// the tracer, recording charges no virtual time and consumes no
// randomness, so schedules stay byte-identical with it on.
func (e *Engine) SetFlight(f *obs.Flight) { e.flight = f }

// Exclusive implements runtime.Runtime. The simulator serializes
// everything through the event loop, so fn runs inline — but only from
// outside the loop; an external caller cannot safely interleave with a
// running simulation.
func (e *Engine) Exclusive(fn func()) {
	if e.running {
		panic("sim: Engine.Exclusive called while the event loop is running")
	}
	fn()
}

// Schedule arranges for fn to run at time e.Now()+d. Scheduling with d <= 0
// runs fn as soon as the current process yields.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.queue.push(event{at: e.now + Time(d), seq: e.seq, fn: fn})
}

// Go spawns a new process executing fn. The process starts when the engine
// next reaches the current virtual time in its event loop.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	e.procs++
	e.live[p] = struct{}{}
	e.Schedule(0, func() {
		p.started = true
		go func() {
			defer func() {
				r := recover()
				p.done = true
				e.procs--
				delete(e.live, p)
				e.yielded <- struct{}{}
				if r != nil && r != errProcKilled {
					panic(r)
				}
			}()
			fn(p)
		}()
		// Wait for the new goroutine to block or finish.
		<-e.yielded
	})
	return p
}

// Kind implements runtime.Runtime: this is the simulated backend.
func (e *Engine) Kind() runtime.Kind { return runtime.SimKind }

// Spawn implements runtime.Runtime in terms of Go. Protocol code spawns
// through this so it compiles against either backend; sim-specific
// tests and harnesses keep using Go directly.
func (e *Engine) Spawn(name string, fn func(t runtime.Task)) {
	e.Go(name, func(p *Proc) { fn(p) })
}

// Blocking implements runtime.Runtime. The simulator has no real I/O
// to overlap, so fn runs inline; it must not touch simulation state.
func (e *Engine) Blocking(fn func()) { fn() }

// NewSignal implements runtime.Runtime.
func (e *Engine) NewSignal() runtime.Signal { return NewSignal(e) }

// NewGroup implements runtime.Runtime.
func (e *Engine) NewGroup() runtime.Group { return NewGroup(e) }

// NewResource implements runtime.Runtime.
func (e *Engine) NewResource(name string, capacity int) runtime.Resource {
	return NewResource(e, name, capacity)
}

// NewPipe implements runtime.Runtime.
func (e *Engine) NewPipe(name string, rate float64) runtime.Pipe {
	return NewPipe(e, name, rate)
}

// Run drives the event loop until the queue is empty or the clock passes
// until (use a huge value to run to completion). It returns the final
// virtual time.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Engine.Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > until {
			// Leave it queued so a later Run can continue.
			break
		}
		ev := e.queue.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
	}
	e.finalizeAccounting()
	return e.now
}

// finalizeAccounting folds the interval since each resource's last state
// change into its busy-time integral, so utilization accounting is
// complete through e.now whenever the event loop is not running.
func (e *Engine) finalizeAccounting() {
	for _, r := range e.resources {
		r.account()
	}
}

// RunAll drives the event loop until no events remain.
func (e *Engine) RunAll() Time { return e.Run(Time(1<<62 - 1)) }

// Stop halts the event loop after the current event completes. Blocked
// processes stay parked until Shutdown reaps them, so callers ending a
// simulation for good should follow Stop (or the final Run) with Shutdown
// to avoid leaking their goroutines.
func (e *Engine) Stop() { e.stopped = true }

// errProcKilled unwinds a process goroutine that Shutdown is reaping.
var errProcKilled = new(int)

// Shutdown stops the engine and reaps every live process so no goroutine
// outlives the simulation: blocked processes are resumed with a kill
// signal that unwinds their stacks, and spawned-but-never-started
// processes are discarded. It must be called from outside the event loop
// (never from a simulation process) and is the intended way to discard an
// engine — especially when many engines run back to back, where parked
// goroutines would otherwise accumulate. It returns the number of
// processes reaped; a well-formed, fully drained simulation returns 0.
func (e *Engine) Shutdown() int {
	if e.running {
		panic("sim: Engine.Shutdown called from inside Run")
	}
	e.stopped = true
	reaped := 0
	for len(e.live) > 0 {
		for p := range e.live {
			reaped++
			if !p.started {
				// Its goroutine was never created; just unregister.
				p.done = true
				e.procs--
				delete(e.live, p)
				continue
			}
			// The process is blocked in Proc.block waiting on resume.
			// Wake it with the kill flag set; block panics with
			// errProcKilled, the goroutine's deferred handler swallows
			// it and signals yielded. If a deferred function blocks
			// again, the process stays live and is killed again on the
			// next pass.
			p.killed = true
			p.resume <- struct{}{}
			<-e.yielded
			break // e.live changed; restart the iteration
		}
	}
	return reaped
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// LiveProcs reports the number of processes that have been spawned and not
// yet finished. After RunAll on a well-formed simulation this is the number
// of processes blocked forever (normally zero).
func (e *Engine) LiveProcs() int { return e.procs }

// LeakCheck returns nil when no processes are live, and otherwise an
// error naming the leaked processes. Call it after the simulation drains
// (and before Shutdown, which reaps the leaks it reports) to assert that
// no process was abandoned mid-blocking — the check harnesses and the
// bench worker pool use it so runs cannot mask leaks.
func (e *Engine) LeakCheck() error {
	if e.procs == 0 {
		return nil
	}
	names := make([]string, 0, len(e.live))
	for p := range e.live {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return fmt.Errorf("sim: %d leaked process(es): %s", e.procs, strings.Join(names, ", "))
}

// Proc is a simulation process: a goroutine that alternates control with
// the engine. All Proc methods must be called from the process's own
// goroutine.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	started bool
	done    bool
	killed  bool
}

// Name returns the process name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine that owns this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Runtime implements runtime.Task.
func (p *Proc) Runtime() runtime.Runtime { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// block yields control to the engine and waits until some event calls
// p.wake.
func (p *Proc) block() {
	p.eng.yielded <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errProcKilled)
	}
}

// wake resumes a blocked process from engine context (inside an event) and
// waits for it to block again or finish.
func (p *Proc) wake() {
	p.resume <- struct{}{}
	<-p.eng.yielded
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Still yield so equal-time events interleave fairly.
		d = 0
	}
	p.eng.Schedule(d, p.wake)
	p.block()
}

// Yield gives other ready events a chance to run at the current time.
func (p *Proc) Yield() { p.Sleep(0) }

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
