package sim

import (
	"cudele/internal/runtime"

	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Fatalf("final time = %v, want 3ms", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		wake = p.Now()
	})
	e.RunAll()
	if wake != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", wake)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("leaked %d procs", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * time.Millisecond)
		trace = append(trace, "a2")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(1 * time.Millisecond)
		trace = append(trace, "b1")
		p.Sleep(2 * time.Millisecond)
		trace = append(trace, "b3")
	})
	e.RunAll()
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++ })
	e.Schedule(time.Hour, func() { ran++ })
	e.Run(Time(time.Second))
	if ran != 1 {
		t.Fatalf("ran %d events before deadline, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunAll()
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestSignal(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	var got interface{}
	var at Time
	e.Go("waiter", func(p *Proc) {
		got = s.Wait(p)
		at = p.Now()
	})
	e.Go("firer", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		s.Fire(42)
	})
	e.RunAll()
	if got != 42 {
		t.Fatalf("signal value = %v, want 42", got)
	}
	if at != Time(7*time.Millisecond) {
		t.Fatalf("waiter resumed at %v, want 7ms", at)
	}
}

func TestSignalPreFired(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	s.Fire("x")
	var got interface{}
	e.Go("waiter", func(p *Proc) { got = s.Wait(p) })
	e.RunAll()
	if got != "x" {
		t.Fatalf("pre-fired signal value = %v", got)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	e := NewEngine(1)
	s := NewSignal(e)
	s.Fire(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second Fire did not panic")
		}
	}()
	s.Fire(nil)
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	if len(finish) != 3 {
		t.Fatalf("finishes = %v", finish)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finishes = %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityParallel(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "pool", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Go("user", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	// Two at a time: finish at 10,10,20,20 ms.
	want := []Time{Time(10 * time.Millisecond), Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(20 * time.Millisecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finishes = %v, want %v", finish, want)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk", 1)
	e.Go("user", func(p *Proc) {
		r.Use(p, 30*time.Millisecond)
		p.Sleep(10 * time.Millisecond) // idle tail
	})
	e.RunAll()
	u := r.Utilization()
	if u < 0.74 || u > 0.76 {
		t.Fatalf("utilization = %v, want 0.75", u)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "x", 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire succeeded at capacity")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestResourceReleaseBelowZeroPanics(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release below zero did not panic")
		}
	}()
	r.Release()
}

func TestPipeTransferTime(t *testing.T) {
	e := NewEngine(1)
	pipe := NewPipe(e, "nic", 100e6) // 100 MB/s
	var done Time
	e.Go("xfer", func(p *Proc) {
		pipe.Transfer(p, 50e6) // 50 MB -> 0.5 s
		done = p.Now()
	})
	e.RunAll()
	if got := done.Seconds(); got < 0.499 || got > 0.501 {
		t.Fatalf("transfer finished at %vs, want 0.5s", got)
	}
	if pipe.Bytes() != 50e6 {
		t.Fatalf("pipe bytes = %d", pipe.Bytes())
	}
}

func TestPipeSerializes(t *testing.T) {
	e := NewEngine(1)
	pipe := NewPipe(e, "nic", 1e6)
	var finish []Time
	for i := 0; i < 2; i++ {
		e.Go("xfer", func(p *Proc) {
			pipe.Transfer(p, 1e6)
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	if finish[0] != Time(time.Second) || finish[1] != Time(2*time.Second) {
		t.Fatalf("finishes = %v", finish)
	}
}

func TestGroupWait(t *testing.T) {
	e := NewEngine(1)
	g := NewGroup(e)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		g.Go("worker", func(p runtime.Task) { p.Sleep(d) })
	}
	e.Go("waiter", func(p *Proc) {
		g.Wait(p)
		doneAt = p.Now()
	})
	e.RunAll()
	if doneAt != Time(3*time.Millisecond) {
		t.Fatalf("group done at %v, want 3ms", doneAt)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		r := NewResource(e, "cpu", 1)
		var finish []Time
		for i := 0; i < 20; i++ {
			e.Go("w", func(p *Proc) {
				d := Duration(e.Rand().Intn(1000)+1) * time.Microsecond
				r.Use(p, d)
				p.Sleep(Duration(e.Rand().Intn(500)) * time.Microsecond)
				finish = append(finish, p.Now())
			})
		}
		e.RunAll()
		return finish
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUtilizationWindow(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	var mark ResourceMark
	var winU float64
	e.Go("w", func(p *Proc) {
		p.Sleep(10 * time.Millisecond) // idle prefix
		mark = r.UtilizationMark()
		r.Use(p, 10*time.Millisecond)
		winU = r.UtilizationSince(mark)
	})
	e.RunAll()
	if winU < 0.99 || winU > 1.01 {
		t.Fatalf("windowed utilization = %v, want 1.0", winU)
	}
	total := r.Utilization()
	if total < 0.49 || total > 0.51 {
		t.Fatalf("total utilization = %v, want 0.5", total)
	}
}
