package sim

import (
	"fmt"
	"strings"
)

// Fault is one entry of a FaultPlan: at simulated time At, something
// happens to Target. The kernel does not interpret Kind or Target — the
// handler passed to Arm does — so higher layers can define crash kinds
// without the kernel knowing about daemons.
type Fault struct {
	At     Time
	Kind   string
	Target string
}

func (f Fault) String() string {
	return fmt.Sprintf("t=%dns %s %s", int64(f.At), f.Kind, f.Target)
}

// FaultPlan is a deterministic schedule of injected faults. Plans are
// data: generated from a seed, printable for reproduction, and armed
// onto an engine like any other scheduled work. An empty (or nil) plan
// is a no-op, so the default simulation is untouched.
type FaultPlan struct {
	Faults []Fault
}

// Arm schedules every fault on e, invoking handle inside the engine at
// each fault's time. Faults whose time has already passed fire at the
// next tick. Arm does not run the engine.
func (fp *FaultPlan) Arm(e *Engine, handle func(Fault)) {
	if fp == nil {
		return
	}
	for _, f := range fp.Faults {
		f := f
		d := Duration(f.At - e.Now())
		if d < 0 {
			d = 0
		}
		e.Schedule(d, func() { handle(f) })
	}
}

// Last returns the time of the latest fault in the plan, 0 for an empty
// plan. Drivers use it to run the simulation past every fault before
// final verification.
func (fp *FaultPlan) Last() Time {
	var last Time
	if fp == nil {
		return 0
	}
	for _, f := range fp.Faults {
		if f.At > last {
			last = f.At
		}
	}
	return last
}

func (fp *FaultPlan) String() string {
	if fp == nil || len(fp.Faults) == 0 {
		return "fault plan: (empty)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan: %d faults\n", len(fp.Faults))
	for i, f := range fp.Faults {
		fmt.Fprintf(&b, "  [%d] %s\n", i, f)
	}
	return strings.TrimRight(b.String(), "\n")
}
