package cudele_test

import (
	"fmt"
	"testing"

	"cudele"
	"cudele/internal/namespace"
)

// These tests exercise the failure semantics that define the durability
// spectrum (paper §II-A): "none" loses updates on any failure, "local"
// survives if the client node recovers, "global" survives anything.

// crashClient simulates a client node crash: the mounted session ends and
// all volatile state (the in-memory journal) is gone. The client-local
// disk survives, as it would on a real node.
func crashClient(c *cudele.Client) {
	c.Unmount()
	if j, err := c.Journal(); err == nil {
		j.Reset()
	}
}

func TestDurabilityNoneLosesUpdatesOnCrash(t *testing.T) {
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	cl.Run(func(p *cudele.Proc) {
		c.MkdirAll(p, "/job", 0755)
		cl.DecouplePolicy(p, c, "/job", &cudele.Policy{
			Consistency: cudele.ConsInvisible, Durability: cudele.DurNone,
			AllocatedInodes: 100,
		})
		root, _ := c.DecoupledRoot()
		for i := 0; i < 20; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		crashClient(c)
		// Nothing to recover from: the computation must be redone
		// (the paper's checkpoint-restart disaster scenario).
		if _, err := c.RecoverLocal(p); err == nil {
			t.Error("recovered a journal that was never persisted")
		}
		if _, err := cl.MDS().Store().Resolve("/job/f0"); err == nil {
			t.Error("updates leaked into the global namespace")
		}
	})
}

func TestDurabilityLocalSurvivesClientRecovery(t *testing.T) {
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	cl.Run(func(p *cudele.Proc) {
		c.MkdirAll(p, "/job", 0755)
		cl.DecouplePolicy(p, c, "/job", &cudele.Policy{
			Consistency: cudele.ConsWeak, Durability: cudele.DurLocal,
			AllocatedInodes: 100,
		})
		root, _ := c.DecoupledRoot()
		for i := 0; i < 20; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		if err := c.LocalPersist(p); err != nil {
			t.Fatalf("persist: %v", err)
		}
		crashClient(c)

		// The node comes back: remount, reload the journal from local
		// disk, and merge.
		c.Mount()
		n, err := c.RecoverLocal(p)
		if err != nil || n != 20 {
			t.Fatalf("recover = %d, %v", n, err)
		}
		if _, err := c.VolatileApply(p); err != nil {
			t.Fatalf("merge after recovery: %v", err)
		}
		for i := 0; i < 20; i++ {
			if _, err := cl.MDS().Store().Resolve(fmt.Sprintf("/job/f%d", i)); err != nil {
				t.Fatalf("f%d lost despite local durability: %v", i, err)
			}
		}
	})
}

func TestDurabilityGlobalSurvivesClientStayingDown(t *testing.T) {
	// With global durability, even a client that never comes back loses
	// nothing: any other node can fetch the journal from the object
	// store and merge it.
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	rescuer := cl.NewClient("rescue")
	cl.Run(func(p *cudele.Proc) {
		c.MkdirAll(p, "/job", 0755)
		cl.DecouplePolicy(p, c, "/job", &cudele.Policy{
			Consistency: cudele.ConsInvisible, Durability: cudele.DurGlobal,
			AllocatedInodes: 100,
		})
		root, _ := c.DecoupledRoot()
		for i := 0; i < 20; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644)
		}
		if err := c.GlobalPersist(p); err != nil {
			t.Fatalf("global persist: %v", err)
		}
		crashClient(c) // stays down forever

		events, err := rescuer.FetchGlobalJournal(p, "c0")
		if err != nil || len(events) != 20 {
			t.Fatalf("fetch = %d events, %v", len(events), err)
		}
		if _, err := cl.MDS().VolatileApply(p, events, int64(len(events))*2500); err != nil {
			t.Fatalf("rescue merge: %v", err)
		}
		for i := 0; i < 20; i++ {
			if _, err := cl.MDS().Store().Resolve(fmt.Sprintf("/job/f%d", i)); err != nil {
				t.Fatalf("f%d lost despite global durability: %v", i, err)
			}
		}
	})
}

func TestMDSCrashRecoveryWithStream(t *testing.T) {
	// Stream gives the POSIX subtree global durability: after an MDS
	// crash, flushed directory objects plus streamed journal segments
	// reconstruct everything.
	cl := cudele.NewCluster()
	cl.MDS().SetStream(true)
	c := cl.NewClient("c0")
	var before *namespace.Store
	cl.Run(func(p *cudele.Proc) {
		dir, _ := c.MkdirAll(p, "/posix/data", 0755)
		for i := 0; i < 50; i++ {
			c.Create(p, dir, fmt.Sprintf("f%d", i), 0644)
		}
		cl.MDS().SaveStore(p)
		// More updates after the flush live only in the stream.
		for i := 50; i < 80; i++ {
			c.Create(p, dir, fmt.Sprintf("f%d", i), 0644)
		}
		cl.MDS().FlushJournal(p)
		before = cl.MDS().Store()

		// Crash + restart: the in-memory store is rebuilt from RADOS.
		if err := cl.MDS().Recover(p); err != nil {
			t.Fatalf("recover: %v", err)
		}
	})
	if cl.MDS().Store() == before {
		t.Fatal("recover did not rebuild the store")
	}
	for i := 0; i < 80; i++ {
		if _, err := cl.MDS().Store().Resolve(fmt.Sprintf("/posix/data/f%d", i)); err != nil {
			t.Fatalf("f%d missing after MDS recovery: %v", i, err)
		}
	}
}

func TestMDSCrashWithoutStreamLosesTail(t *testing.T) {
	// The control: with Stream off, updates after the last flush are
	// lost on an MDS crash — exactly what "durability: none" means for
	// the strong-consistency column.
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	cl.Run(func(p *cudele.Proc) {
		dir, _ := c.MkdirAll(p, "/posix", 0755)
		c.Create(p, dir, "flushed", 0644)
		cl.MDS().SaveStore(p)
		c.Create(p, dir, "volatile", 0644)
		if err := cl.MDS().Recover(p); err != nil {
			t.Fatalf("recover: %v", err)
		}
		if _, err := cl.MDS().Store().Resolve("/posix/flushed"); err != nil {
			t.Errorf("flushed file lost: %v", err)
		}
		if _, err := cl.MDS().Store().Resolve("/posix/volatile"); err == nil {
			t.Error("unflushed update survived an MDS crash with no journal")
		}
	})
}

func TestInterfererCannotDestroyDecoupledResults(t *testing.T) {
	// interfere: allow lets an interferer write, but at merge time the
	// decoupled namespace's results take priority (paper §III-C).
	cl := cudele.NewCluster()
	owner := cl.NewClient("owner")
	intr := cl.NewClient("intr")
	cl.Run(func(p *cudele.Proc) {
		owner.MkdirAll(p, "/exp", 0755)
		cl.DecouplePolicy(p, owner, "/exp", &cudele.Policy{
			Consistency: cudele.ConsWeak, Durability: cudele.DurNone,
			AllocatedInodes: 100, Interfere: cudele.InterfereAllow,
		})
		root, _ := owner.DecoupledRoot()
		owner.LocalCreate(p, root, "result", 0600)
		// The interferer writes the same name with different attrs.
		if _, err := intr.Create(p, root, "result", 0444); err != nil {
			t.Fatalf("interferer create: %v", err)
		}
		if _, err := owner.VolatileApply(p); err != nil {
			t.Fatalf("merge: %v", err)
		}
		in, err := cl.MDS().Store().Resolve("/exp/result")
		if err != nil {
			t.Fatalf("result missing: %v", err)
		}
		if in.Mode != 0600 {
			t.Fatalf("merge did not take priority: mode %o", in.Mode)
		}
	})
}
