package cudele_test

import (
	"errors"
	"fmt"
	"testing"

	"cudele"
	"cudele/internal/client"
	"cudele/internal/policy"
	"cudele/internal/rados"
)

// TestFailureMatrix exercises every cell of the paper's consistency x
// durability matrix (Table I) under three failure scenarios, asserting
// the contract each policy makes:
//
//	DurNone    may lose everything on any failure; nothing may leak
//	DurLocal   acked local persists survive a client crash + restart
//	DurGlobal  acked global persists (or journal flushes) survive any crash
//	ConsInvisible / ConsWeak   updates never visible before a merge
//	ConsStrong                 acked updates visible immediately
//
// The randomized version of this matrix — with torn writes, transport
// faults, and crash schedules — lives in internal/chaos; these are the
// deterministic, human-readable anchors.
func TestFailureMatrix(t *testing.T) {
	consistencies := []policy.Consistency{
		cudele.ConsInvisible, cudele.ConsWeak, cudele.ConsStrong,
	}
	durabilities := []policy.Durability{
		cudele.DurNone, cudele.DurLocal, cudele.DurGlobal,
	}
	scenarios := []struct {
		name string
		run  func(t *testing.T, cons policy.Consistency, dur policy.Durability)
	}{
		{"client-crash", matrixClientCrash},
		{"mds-crash", matrixMDSCrash},
		{"crash-during-global-persist", matrixCrashDuringGlobalPersist},
	}
	for _, cons := range consistencies {
		for _, dur := range durabilities {
			for _, sc := range scenarios {
				sc := sc
				cons, dur := cons, dur
				t.Run(fmt.Sprintf("%v-%v/%s", cons, dur, sc.name), func(t *testing.T) {
					sc.run(t, cons, dur)
				})
			}
		}
	}
}

const matrixFiles = 20

// setupDecoupled builds a cluster with /job decoupled under the given
// policy, 20 files created into the client journal, and asserts the
// consistency half of the contract: nothing is visible before a merge.
func setupDecoupled(t *testing.T, p cudele.Proc, cl *cudele.Cluster, c *cudele.Client,
	cons policy.Consistency, dur policy.Durability) (*cudele.Entry, *cudele.Policy) {
	t.Helper()
	if _, err := c.MkdirAll(p, "/job", 0755); err != nil {
		t.Fatalf("mkdir /job: %v", err)
	}
	if err := cl.MDS().SaveStore(p); err != nil {
		t.Fatalf("save store: %v", err)
	}
	pol := &cudele.Policy{Consistency: cons, Durability: dur, AllocatedInodes: 100}
	entry, err := cl.DecouplePolicy(p, c, "/job", pol)
	if err != nil {
		t.Fatalf("decouple: %v", err)
	}
	root, _ := c.DecoupledRoot()
	for i := 0; i < matrixFiles; i++ {
		if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
			t.Fatalf("local create f%d: %v", i, err)
		}
	}
	if _, err := cl.MDS().Store().Resolve("/job/f0"); err == nil {
		t.Fatal("decoupled update visible before merge")
	}
	return entry, pol
}

// assertAllVisible checks every created file resolves in the MDS store.
func assertAllVisible(t *testing.T, cl *cudele.Cluster, why string) {
	t.Helper()
	for i := 0; i < matrixFiles; i++ {
		if _, err := cl.MDS().Store().Resolve(fmt.Sprintf("/job/f%d", i)); err != nil {
			t.Fatalf("f%d lost %s: %v", i, why, err)
		}
	}
}

// matrixClientCrash: the client node crashes after its acks. What
// survives is exactly what the durability level promised.
func matrixClientCrash(t *testing.T, cons policy.Consistency, dur policy.Durability) {
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	if cons == cudele.ConsStrong {
		// Strong updates are at the MDS when acked: a client crash
		// loses nothing regardless of durability level.
		cl.Run(func(p cudele.Proc) {
			dir, _ := c.MkdirAll(p, "/job", 0755)
			for i := 0; i < matrixFiles; i++ {
				if _, err := c.Create(p, dir, fmt.Sprintf("f%d", i), 0644); err != nil {
					t.Fatalf("create f%d: %v", i, err)
				}
			}
			assertAllVisible(t, cl, "before the crash (strong = immediately visible)")
			c.Crash()
			if err := c.Restart(p); err != nil {
				t.Fatalf("restart: %v", err)
			}
			assertAllVisible(t, cl, "after a client crash")
		})
		return
	}
	rescuer := cl.NewClient("rescue")
	cl.Run(func(p cudele.Proc) {
		setupDecoupled(t, p, cl, c, cons, dur)
		switch dur {
		case cudele.DurNone:
			// Never persisted: the crash destroys the journal, recovery
			// has nothing to load, and nothing may have leaked.
			c.Crash()
			if err := c.Restart(p); err != nil {
				t.Fatalf("restart: %v", err)
			}
			if _, err := c.RecoverLocal(p); err == nil {
				t.Error("recovered a journal that was never persisted")
			}
			if _, err := cl.MDS().Store().Resolve("/job/f0"); err == nil {
				t.Error("lost updates leaked into the global namespace")
			}
		case cudele.DurLocal:
			// Acked local persist: the node's disk survives its crash,
			// so recover + merge restores everything.
			if err := c.LocalPersist(p); err != nil {
				t.Fatalf("local persist: %v", err)
			}
			c.Crash()
			if err := c.Restart(p); err != nil {
				t.Fatalf("restart: %v", err)
			}
			n, err := c.RecoverLocal(p)
			if err != nil || n != matrixFiles {
				t.Fatalf("recover = %d, %v; want %d", n, err, matrixFiles)
			}
			if _, err := c.VolatileApply(p); err != nil {
				t.Fatalf("merge after recovery: %v", err)
			}
			assertAllVisible(t, cl, "despite local durability")
		case cudele.DurGlobal:
			// Acked global persist: even a client that never comes back
			// loses nothing — any node can fetch and merge.
			if err := c.GlobalPersist(p); err != nil {
				t.Fatalf("global persist: %v", err)
			}
			c.Crash() // stays down forever
			events, err := rescuer.FetchGlobalJournal(p, "c0")
			if err != nil || len(events) != matrixFiles {
				t.Fatalf("fetch = %d events, %v; want %d", len(events), err, matrixFiles)
			}
			if _, err := cl.MDS().VolatileApply(p, events, int64(len(events))*2500); err != nil {
				t.Fatalf("rescue merge: %v", err)
			}
			assertAllVisible(t, cl, "despite global durability")
		}
	})
}

// matrixMDSCrash: the metadata server crashes and restarts.
func matrixMDSCrash(t *testing.T, cons policy.Consistency, dur policy.Durability) {
	cl := cudele.NewCluster()
	if cons == cudele.ConsStrong && dur == cudele.DurGlobal {
		// Strong + global = RPCs + Stream (Table I): journaled updates
		// survive the MDS crash once flushed.
		cl.MDS().SetStream(true)
	}
	c := cl.NewClient("c0")
	if cons == cudele.ConsStrong {
		cl.Run(func(p cudele.Proc) {
			dir, _ := c.MkdirAll(p, "/job", 0755)
			if err := cl.MDS().SaveStore(p); err != nil {
				t.Fatalf("save store: %v", err)
			}
			for i := 0; i < matrixFiles; i++ {
				if _, err := c.Create(p, dir, fmt.Sprintf("f%d", i), 0644); err != nil {
					t.Fatalf("create f%d: %v", i, err)
				}
			}
			if dur == cudele.DurGlobal {
				cl.MDS().FlushJournal(p)
			}
			cl.MDS().Crash()
			if err := cl.MDS().Restart(p); err != nil {
				t.Fatalf("mds restart: %v", err)
			}
			c.Unmount()
			c.Mount()
			if dur == cudele.DurGlobal {
				assertAllVisible(t, cl, "after an MDS crash despite a journal flush")
			} else {
				// Without the stream, updates past the last store flush
				// are volatile MDS state: the crash loses them.
				if _, err := cl.MDS().Store().Resolve("/job"); err != nil {
					t.Fatalf("saved directory lost: %v", err)
				}
				if _, err := cl.MDS().Store().Resolve("/job/f0"); err == nil {
					t.Error("unflushed strong update survived an MDS crash without a journal")
				}
			}
		})
		return
	}
	cl.Run(func(p cudele.Proc) {
		entry, pol := setupDecoupled(t, p, cl, c, cons, dur)
		// The unmerged journal lives on the client, so an MDS crash
		// cannot touch it — at any durability level. After the MDS
		// recovers and the registration is replayed, the merge lands.
		cl.MDS().Crash()
		if err := cl.MDS().Restart(p); err != nil {
			t.Fatalf("mds restart: %v", err)
		}
		lo, _, err := cl.MDS().Decouple(p, "/job", pol, "c0")
		if err != nil {
			t.Fatalf("re-register: %v", err)
		}
		if lo != entry.GrantLo {
			t.Fatalf("re-registration moved the grant: %d != %d", lo, entry.GrantLo)
		}
		c.Unmount()
		c.Mount()
		n, err := c.VolatileApply(p)
		if err != nil || n != matrixFiles {
			t.Fatalf("merge after MDS recovery = %d, %v; want %d", n, err, matrixFiles)
		}
		assertAllVisible(t, cl, "after an MDS crash (journal was client-held)")
	})
}

// matrixCrashDuringGlobalPersist: the object store fails (cleanly, then
// torn) in the middle of a Global Persist. The failed persist must
// surface an error — the ack is the durability point — and a retry on a
// fault-free store completes the contract.
func matrixCrashDuringGlobalPersist(t *testing.T, cons policy.Consistency, dur policy.Durability) {
	if dur != cudele.DurGlobal {
		t.Skipf("global persist is not part of the %v composition", dur)
	}
	if cons == cudele.ConsStrong {
		t.Skip("strong cells persist via the MDS journal stream, not Global Persist")
	}
	for _, mode := range []struct {
		name string
		arm  func(inj *rados.FaultInjector)
	}{
		{"clean-error", func(inj *rados.FaultInjector) { inj.WriteErrorProb = 1 }},
		{"torn-write", func(inj *rados.FaultInjector) { inj.TornWriteProb = 1 }},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			cl := cudele.NewCluster()
			c := cl.NewClient("c0")
			rescuer := cl.NewClient("rescue")
			cl.Run(func(p cudele.Proc) {
				setupDecoupled(t, p, cl, c, cons, dur)
				inj := rados.NewFaultInjector(7)
				inj.MaxFaults = 1
				inj.Match = func(oid rados.ObjectID) bool {
					return oid.Pool == client.ClientJournalPool
				}
				mode.arm(inj)
				cl.Objects().SetFaults(inj)
				err := c.GlobalPersist(p)
				if !errors.Is(err, rados.ErrIO) {
					t.Fatalf("persist into a failing store = %v; want an injected I/O error", err)
				}
				// No ack, no durability claim — but a retry once the
				// store heals (MaxFaults exhausted) must succeed and
				// fully overwrite any torn leftovers.
				if err := c.GlobalPersist(p); err != nil {
					t.Fatalf("persist retry: %v", err)
				}
				c.Crash() // stays down forever
				events, err := rescuer.FetchGlobalJournal(p, "c0")
				if err != nil || len(events) != matrixFiles {
					t.Fatalf("fetch = %d events, %v; want %d", len(events), err, matrixFiles)
				}
				if _, err := cl.MDS().VolatileApply(p, events, int64(len(events))*2500); err != nil {
					t.Fatalf("rescue merge: %v", err)
				}
				assertAllVisible(t, cl, "despite a failed persist attempt")
			})
		})
	}
}

func TestInterfererCannotDestroyDecoupledResults(t *testing.T) {
	// interfere: allow lets an interferer write, but at merge time the
	// decoupled namespace's results take priority (paper §III-C).
	cl := cudele.NewCluster()
	owner := cl.NewClient("owner")
	intr := cl.NewClient("intr")
	cl.Run(func(p cudele.Proc) {
		owner.MkdirAll(p, "/exp", 0755)
		cl.DecouplePolicy(p, owner, "/exp", &cudele.Policy{
			Consistency: cudele.ConsWeak, Durability: cudele.DurNone,
			AllocatedInodes: 100, Interfere: cudele.InterfereAllow,
		})
		root, _ := owner.DecoupledRoot()
		owner.LocalCreate(p, root, "result", 0600)
		// The interferer writes the same name with different attrs.
		if _, err := intr.Create(p, root, "result", 0444); err != nil {
			t.Fatalf("interferer create: %v", err)
		}
		if _, err := owner.VolatileApply(p); err != nil {
			t.Fatalf("merge: %v", err)
		}
		in, err := cl.MDS().Store().Resolve("/exp/result")
		if err != nil {
			t.Fatalf("result missing: %v", err)
		}
		if in.Mode != 0600 {
			t.Fatalf("merge did not take priority: mode %o", in.Mode)
		}
	})
}
