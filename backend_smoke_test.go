package cudele

import (
	"fmt"
	"sort"
	"testing"

	"cudele/internal/client"
	"cudele/internal/namespace"
)

// smokeWorkload runs a small deterministic mixed workload — RPC creates
// plus a decoupled subtree that is merged back — and returns the sorted
// list of namespace paths it produced.
func smokeWorkload(t *testing.T, cl *Cluster) []string {
	t.Helper()
	c0 := cl.NewClient("c0")
	c1 := cl.NewClient("c1")
	cl.Run(func(p Proc) {
		dir, err := c0.MkdirAll(p, "/home/a", 0755)
		if err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			if _, err := c0.Create(p, dir, fmt.Sprintf("rpc.%02d", i), 0644); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
		if _, err := c1.MkdirAll(p, "/home/b", 0755); err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		if _, err := cl.Decouple(p, c1, "/home/b",
			"consistency: weak\ndurability: none\nallocated_inodes: 500\n"); err != nil {
			t.Errorf("decouple: %v", err)
			return
		}
		root, _ := c1.DecoupledRoot()
		sub, err := c1.LocalMkdir(p, root, "sub", 0755)
		if err != nil {
			t.Errorf("local mkdir: %v", err)
			return
		}
		for i := 0; i < 30; i++ {
			if _, err := c1.LocalCreate(p, root, fmt.Sprintf("dec.%02d", i), 0644); err != nil {
				t.Errorf("local create: %v", err)
				return
			}
		}
		if _, err := c1.LocalCreate(p, sub, "deep", 0644); err != nil {
			t.Errorf("local create: %v", err)
			return
		}
		if _, err := c1.VolatileApply(p); err != nil {
			t.Errorf("merge: %v", err)
			return
		}
	})
	if n := cl.Close(); n != 0 {
		t.Fatalf("close reaped %d tasks, want 0", n)
	}
	var paths []string
	if err := cl.MDS().Store().Walk(RootIno, func(p string, in *namespace.Inode) error {
		paths = append(paths, p)
		return nil
	}); err != nil {
		t.Fatalf("walk: %v", err)
	}
	sort.Strings(paths)
	return paths
}

// TestBackendSmokeSimVsReal is the cross-backend invariant: the same
// protocol stack driven by the same workload ends in the same namespace
// whether it executes on simulated time or on real goroutines and wall
// clocks. Timing differs across backends by design; namespace contents
// must not.
func TestBackendSmokeSimVsReal(t *testing.T) {
	simPaths := smokeWorkload(t, NewCluster(WithSeed(3)))
	realPaths := smokeWorkload(t, NewCluster(WithSeed(3), WithBackend(BackendReal)))
	if len(simPaths) == 0 {
		t.Fatal("sim workload produced an empty namespace")
	}
	if len(simPaths) != len(realPaths) {
		t.Fatalf("namespace size: sim %d paths, real %d paths", len(simPaths), len(realPaths))
	}
	for i := range simPaths {
		if simPaths[i] != realPaths[i] {
			t.Fatalf("namespace diverges at %d: sim %q, real %q", i, simPaths[i], realPaths[i])
		}
	}
}

// TestBackendSmokeRealWithDataDir runs the workload on the real backend
// with a data dir, then recovers a fresh cluster from the same files and
// checks the globally persisted state came back.
func TestBackendSmokeRealWithDataDir(t *testing.T) {
	dir := t.TempDir()
	cl := NewCluster(WithSeed(3), WithBackend(BackendReal), WithDataDir(dir))
	c := cl.NewClient("c0")
	cl.Run(func(p Proc) {
		if _, err := c.MkdirAll(p, "/data", 0755); err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		if _, err := cl.Decouple(p, c, "/data",
			"consistency: weak\ndurability: global\nallocated_inodes: 100\n"); err != nil {
			t.Errorf("decouple: %v", err)
			return
		}
		root, _ := c.DecoupledRoot()
		for i := 0; i < 10; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("f.%d", i), 0644); err != nil {
				t.Errorf("local create: %v", err)
				return
			}
		}
		if err := c.GlobalPersist(p); err != nil {
			t.Errorf("global persist: %v", err)
		}
	})
	cl.Close()

	// A fresh cluster over the same data dir must see the persisted
	// objects (recovery happens in AttachStore via NewCluster).
	cl2 := NewCluster(WithSeed(4), WithBackend(BackendReal), WithDataDir(dir))
	defer cl2.Close()
	var names []string
	cl2.Run(func(p Proc) {
		names = cl2.Objects().List(p, client.ClientJournalPool)
	})
	if len(names) == 0 {
		t.Fatal("no persisted objects recovered from data dir")
	}
}

// TestBackendSmokeLoopback exercises the loopback-TCP wire option: every
// Call does a real kernel socket round trip. Small workload; the test
// asserts correctness, not latency.
func TestBackendSmokeLoopback(t *testing.T) {
	cl := NewCluster(WithSeed(5), WithBackend(BackendReal), WithLoopbackNet())
	defer cl.Close()
	c := cl.NewClient("c0")
	cl.Run(func(p Proc) {
		d, err := c.MkdirAll(p, "/net", 0755)
		if err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		for i := 0; i < 5; i++ {
			if _, err := c.Create(p, d, fmt.Sprintf("f.%d", i), 0644); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
	})
	if _, err := cl.MDS().Store().Resolve("/net/f.4"); err != nil {
		t.Fatalf("file missing after loopback run: %v", err)
	}
}
