module cudele

go 1.22
