// Package cudele is a Go reproduction of "Cudele: An API and Framework
// for Programmable Consistency and Durability in a Global Namespace"
// (Sevilla et al., IEEE IPDPS 2018).
//
// Cudele lets administrators assign consistency (invisible, weak, strong)
// and durability (none, local, global) policies to subtrees of a single
// global file-system namespace. Policies are compositions of six
// mechanisms — RPCs, Append Client Journal, Volatile Apply, Nonvolatile
// Apply, Stream, Local Persist, Global Persist — so one namespace can host
// POSIX-strict subtrees next to BatchFS/DeltaFS-style decoupled subtrees.
//
// This package is the public facade over a complete, deterministic,
// discrete-event-simulated CephFS-like cluster: a replicated object store
// (RADOS), a metadata server with journal streaming and a capability
// protocol, a monitor that versions and distributes policies, and a
// client library implementing every mechanism. Metadata operations run
// for real (real namespace trees, real binary journals, real objects);
// only device timing is simulated, calibrated to the paper's testbed.
//
// A minimal session:
//
//	cl := cudele.NewCluster()
//	c := cl.NewClient("client.0")
//	cl.Run(func(p *cudele.Proc) {
//		dir, _ := c.MkdirAll(p, "/home/alice/job", 0755)
//		cl.Decouple(p, c, "/home/alice/job",
//			"consistency: weak\ndurability: local\nallocated_inodes: 100000\n")
//		root, _ := c.DecoupledRoot()
//		c.LocalCreate(p, root, "ckpt.0", 0644)
//		c.RunComposition(p, cudele.MustComposition(
//			"local_persist+volatile_apply"))
//		_ = dir
//	})
package cudele

import (
	"fmt"
	"path/filepath"

	"cudele/internal/client"
	"cudele/internal/mds"
	"cudele/internal/model"
	"cudele/internal/monitor"
	"cudele/internal/namespace"
	"cudele/internal/obs"
	"cudele/internal/policy"
	"cudele/internal/rados"
	"cudele/internal/realrt"
	"cudele/internal/runtime"
	"cudele/internal/sim"
)

// Re-exported types: the facade's vocabulary is the internal packages'
// types, so the whole public API lives behind one import.
type (
	// Cluster wires a complete simulated Cudele deployment: object
	// store, metadata cluster (one or more ranks), monitor, and
	// clients, all sharing one deterministic virtual clock.
	Cluster struct {
		rt  runtime.Runtime
		eng *sim.Engine // non-nil only on the sim backend
		cfg model.Config

		dataDir string

		objects *rados.Cluster
		meta    *mds.Cluster
		mon     *monitor.Monitor

		clients map[string]*client.Client

		// heat is the per-subtree load accountant; nil until EnableHeat.
		heat *obs.Heat
	}

	// Proc is a task handle — a simulation process or, on the real
	// backend, a goroutine; all cluster operations take one.
	Proc = runtime.Task

	// Engine is the discrete-event simulation engine.
	Engine = sim.Engine

	// Runtime is the execution backend a cluster runs on.
	Runtime = runtime.Runtime

	// Backend selects a cluster's execution backend (see WithBackend).
	Backend = runtime.Kind

	// Client is a storage client with both the RPC path and the
	// decoupled-namespace mechanisms.
	Client = client.Client

	// Policy is a subtree's consistency/durability configuration.
	Policy = policy.Policy

	// Composition is an ordered mechanism composition.
	Composition = policy.Composition

	// Config is the calibrated device/cost model.
	Config = model.Config

	// Ino is an inode number.
	Ino = namespace.Ino

	// Entry is a monitor registration for a decoupled subtree.
	Entry = monitor.Entry

	// Subtree is a first-class subtree ownership record: the unit of
	// placement, migration, and balancing.
	Subtree = mds.Subtree

	// Balancer is a running heat-driven balancer (see StartBalancer).
	Balancer = monitor.Balancer

	// BalancerConfig tunes a balancer run; zero values pick defaults.
	BalancerConfig = monitor.BalancerConfig
)

// Consistency levels (paper Table I columns, plus the two cells beyond
// Table I: speculative and strong-eventual).
const (
	ConsInvisible      = policy.ConsInvisible
	ConsWeak           = policy.ConsWeak
	ConsStrong         = policy.ConsStrong
	ConsSpeculative    = policy.ConsSpeculative
	ConsStrongEventual = policy.ConsStrongEventual
)

// Durability levels (paper Table I rows).
const (
	DurNone   = policy.DurNone
	DurLocal  = policy.DurLocal
	DurGlobal = policy.DurGlobal
)

// Interfere policies (paper §III-C).
const (
	InterfereAllow = policy.InterfereAllow
	InterfereBlock = policy.InterfereBlock
)

// RootIno is the namespace root's inode number.
const RootIno = namespace.RootIno

// Execution backends (see WithBackend).
const (
	// BackendSim is the deterministic discrete-event simulator: virtual
	// time, calibrated device costs, byte-identical results per seed.
	BackendSim = runtime.SimKind
	// BackendReal runs tasks as goroutines on wall time; with a data
	// dir, RADOS objects live as fsynced files (see WithDataDir).
	BackendReal = runtime.RealKind
)

// ParseBackend parses a -backend flag value ("sim" or "real").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "sim":
		return BackendSim, nil
	case "real":
		return BackendReal, nil
	}
	return BackendSim, fmt.Errorf("unknown backend %q (valid: sim, real)", s)
}

// DefaultConfig returns the calibration for the paper's CloudLab testbed.
func DefaultConfig() Config { return model.Default() }

// Option customizes NewCluster.
type Option func(*clusterOpts)

type clusterOpts struct {
	seed     int64
	cfg      model.Config
	ranks    int
	backend  Backend
	dataDir  string
	loopback bool
}

// WithSeed sets the deterministic simulation seed.
func WithSeed(seed int64) Option { return func(o *clusterOpts) { o.seed = seed } }

// WithConfig overrides the calibrated device model.
func WithConfig(cfg Config) Option { return func(o *clusterOpts) { o.cfg = cfg } }

// WithMDSRanks sets the number of metadata ranks. The default is 1, the
// paper's deployment; more ranks partition the namespace by subtree
// placement (mds_rank in a policies file, or Monitor.Place).
func WithMDSRanks(n int) Option { return func(o *clusterOpts) { o.ranks = n } }

// WithBackend selects the execution backend. The default, BackendSim,
// is the deterministic simulator; BackendReal runs the same protocol
// stack on goroutines and wall time.
func WithBackend(b Backend) Option { return func(o *clusterOpts) { o.backend = b } }

// WithDataDir roots the real backend's durability on dir: RADOS objects
// become fsynced files under dir/objects (write→fsync→rename, so
// DurGlobal survives a kill), and each client's Local Persist target is
// a real file under dir/<client>. It is ignored on the sim backend.
func WithDataDir(dir string) Option { return func(o *clusterOpts) { o.dataDir = dir } }

// WithLoopbackNet adds a loopback-TCP round trip to every metadata Call
// on the real backend, so measured latencies include a real kernel
// network stack. Ignored on the sim backend.
func WithLoopbackNet() Option { return func(o *clusterOpts) { o.loopback = true } }

// NewCluster builds a cluster with 1 monitor, the configured number of
// metadata ranks (default 1), and the configured number of OSDs
// (paper §V: 1 MON, 1 MDS, 3 OSDs).
func NewCluster(opts ...Option) *Cluster {
	o := clusterOpts{seed: 1, cfg: model.Default(), ranks: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.cfg.Validate(); err != nil {
		panic(fmt.Sprintf("cudele: invalid config: %v", err))
	}
	var rt runtime.Runtime
	var eng *sim.Engine
	switch o.backend {
	case BackendReal:
		re := realrt.New(o.seed)
		if o.loopback {
			if err := re.EnableLoopback(); err != nil {
				panic(fmt.Sprintf("cudele: loopback net: %v", err))
			}
		}
		rt = re
	default:
		eng = sim.NewEngine(o.seed)
		rt = eng
	}
	obj := rados.New(rt, o.cfg)
	if o.backend == BackendReal && o.dataDir != "" {
		fs, err := rados.OpenFileStore(filepath.Join(o.dataDir, "objects"))
		if err != nil {
			panic(fmt.Sprintf("cudele: data dir: %v", err))
		}
		if err := obj.AttachStore(fs); err != nil {
			panic(fmt.Sprintf("cudele: load objects: %v", err))
		}
	}
	meta := mds.NewCluster(rt, o.cfg, obj, o.ranks)
	return &Cluster{
		rt:      rt,
		eng:     eng,
		cfg:     o.cfg,
		dataDir: o.dataDir,
		objects: obj,
		meta:    meta,
		mon:     monitor.New(rt, meta),
		clients: make(map[string]*client.Client),
	}
}

// Engine returns the simulation engine, nil on the real backend. It is
// the sim-only escape hatch (chaos schedules, Run(until) windows);
// backend-agnostic code uses Runtime instead.
func (cl *Cluster) Engine() *Engine { return cl.eng }

// Runtime returns the execution backend the cluster runs on.
func (cl *Cluster) Runtime() Runtime { return cl.rt }

// Backend reports which execution backend the cluster runs on.
func (cl *Cluster) Backend() Backend { return cl.rt.Kind() }

// Config returns the cluster's cost model.
func (cl *Cluster) Config() Config { return cl.cfg }

// MDS returns the rank-0 metadata server — the whole service when the
// cluster runs the default single rank.
func (cl *Cluster) MDS() *mds.Server { return cl.meta.Rank(0) }

// Metadata returns the metadata cluster (all ranks plus routing).
func (cl *Cluster) Metadata() *mds.Cluster { return cl.meta }

// Objects returns the simulated object store.
func (cl *Cluster) Objects() *rados.Cluster { return cl.objects }

// Monitor returns the cluster monitor.
func (cl *Cluster) Monitor() *monitor.Monitor { return cl.mon }

// NewClient creates and mounts a client. Client names must be unique.
// Each client gets its own portal — a routed endpoint over a
// placement-table replica that the monitor keeps refreshed.
func (cl *Cluster) NewClient(name string) *Client {
	if _, dup := cl.clients[name]; dup {
		panic(fmt.Sprintf("cudele: duplicate client %q", name))
	}
	portal := cl.meta.Portal()
	cl.mon.Subscribe(name, portal.Table())
	c := client.New(cl.rt, cl.cfg, name, portal, cl.objects)
	if cl.rt.Kind() == BackendReal && cl.dataDir != "" {
		c.SetLocalDir(filepath.Join(cl.dataDir, name))
	}
	c.Mount()
	cl.clients[name] = c
	return c
}

// Client returns a previously created client by name.
func (cl *Cluster) Client(name string) (*Client, bool) {
	c, ok := cl.clients[name]
	return c, ok
}

// Go spawns a task; on the sim backend it will not run until
// Run/RunAll, on the real backend it starts immediately.
func (cl *Cluster) Go(name string, fn func(p Proc)) { cl.rt.Spawn(name, fn) }

// Run spawns fn as a task and drives the cluster until all tasks
// drain, returning the elapsed time in seconds (virtual on sim, wall
// on real). It is the simplest way to execute a scripted scenario.
func (cl *Cluster) Run(fn func(p Proc)) float64 {
	cl.rt.Spawn("main", fn)
	return cl.rt.RunAll().Seconds()
}

// RunAll drives all previously spawned tasks to completion.
func (cl *Cluster) RunAll() float64 { return cl.rt.RunAll().Seconds() }

// Now returns the current time in seconds (virtual on sim, wall on
// real).
func (cl *Cluster) Now() float64 { return cl.rt.Now().Seconds() }

// Close reaps every task so no goroutine outlives the cluster; call it
// when discarding a cluster (especially real-backend ones, whose tasks
// are true goroutines). It returns the number of tasks reaped — 0 for
// a cleanly drained run.
func (cl *Cluster) Close() int { return cl.rt.Shutdown() }

// Decouple registers the subtree at path with the monitor using a
// policies file (the paper's (path, policies.yml) API) and attaches the
// resulting grant to client c.
func (cl *Cluster) Decouple(p Proc, c *Client, path, policiesText string) (*Entry, error) {
	e, err := cl.mon.Register(p, path, policiesText, c.Name())
	if err != nil {
		return nil, err
	}
	if err := c.AdoptGrant(p, path, e.GrantLo, e.GrantN); err != nil {
		return nil, err
	}
	if err := c.SetMergeMode(e.Policy.Consistency); err != nil {
		return nil, err
	}
	return e, nil
}

// DecouplePolicy is Decouple with an already-built Policy.
func (cl *Cluster) DecouplePolicy(p Proc, c *Client, path string, pol *Policy) (*Entry, error) {
	e, err := cl.mon.RegisterPolicy(p, path, pol, c.Name())
	if err != nil {
		return nil, err
	}
	if err := c.AdoptGrant(p, path, e.GrantLo, e.GrantN); err != nil {
		return nil, err
	}
	if err := c.SetMergeMode(pol.Consistency); err != nil {
		return nil, err
	}
	return e, nil
}

// Recouple returns a subtree to the global namespace's semantics.
func (cl *Cluster) Recouple(p Proc, path string) error {
	return cl.mon.Unregister(p, path)
}

// Migrate moves ownership of the subtree at path to metadata rank dst
// online: the source freezes and streams the subtree while clients keep
// operating (bounced requests retry transparently), and ownership flips
// only when the monitor publishes the new cluster-map epoch.
func (cl *Cluster) Migrate(p Proc, path string, dst int) error {
	return cl.mon.Migrate(p, path, dst)
}

// Reattach re-installs a registered subtree's policy, owner, and exact
// inode grant on its current owning rank — the recovery step after that
// rank restarted.
func (cl *Cluster) Reattach(p Proc, path string) error {
	return cl.mon.Reattach(p, path)
}

// SplitDir fragments the directory at dir across the given metadata
// ranks by dentry hash — the single-hot-directory relief valve.
func (cl *Cluster) SplitDir(p Proc, dir string, ranks []int) error {
	return cl.mon.SplitDir(p, dir, ranks)
}

// StartBalancer spawns the monitor's heat-driven balancer, which
// periodically samples the heat map and exports subtrees off overloaded
// ranks. EnableHeat must have been called first. The balancer runs
// cfg.Rounds rounds and stops; it is entirely opt-in, so runs that never
// start one are unaffected.
func (cl *Cluster) StartBalancer(cfg BalancerConfig) *Balancer {
	if cl.heat == nil {
		panic("cudele: StartBalancer requires EnableHeat")
	}
	return cl.mon.StartBalancer(cl.heat, cfg)
}

// Subtrees lists the metadata cluster's subtree ownership records,
// sorted by path.
func (cl *Cluster) Subtrees() []*Subtree { return cl.meta.Subtrees() }

// MustComposition parses a mechanism-composition DSL string and panics on
// error; it is a convenience for examples and tests.
func MustComposition(dsl string) Composition {
	comp, err := policy.ParseComposition(dsl)
	if err != nil {
		panic(err)
	}
	return comp
}

// CompileTableI returns the Table I composition for a consistency and
// durability level.
func CompileTableI(c policy.Consistency, d policy.Durability) (Composition, error) {
	return policy.Compile(c, d)
}

// ParsePolicies parses a policies file (§III-C).
func ParsePolicies(text string) (*Policy, error) { return policy.ParseFile(text) }
