package cudele

import (
	"fmt"
	"testing"
	"time"
)

// TestMigrateClientTransparent: clients keep creating while their
// subtree migrates between ranks. Requests that land during the freeze
// bounce with a redirect and retry transparently; nothing is lost and
// the client ends up talking to the new owner.
func TestMigrateClientTransparent(t *testing.T) {
	cl := NewCluster(WithMDSRanks(2))
	c := cl.NewClient("client.0")
	var created int
	cl.Go("load", func(p Proc) {
		dir, err := c.MkdirAll(p, "/job", 0755)
		if err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		for i := 0; i < 200; i++ {
			if _, err := c.Create(p, dir, fmt.Sprintf("f%04d", i), 0644); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
			created++
		}
	})
	cl.Go("migrate", func(p Proc) {
		// Wait (deterministically, on virtual time) until the load task
		// has built the tree, then migrate it out from under it.
		for {
			p.Sleep(time.Millisecond)
			if _, err := cl.MDS().Store().Resolve("/job/f0005"); err == nil {
				break
			}
		}
		if err := cl.Migrate(p, "/job", 1); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	cl.RunAll()
	if created != 200 {
		t.Fatalf("created = %d, want 200", created)
	}
	if got := cl.Metadata().Table().RankFor("/job"); got != 1 {
		t.Fatalf("RankFor(/job) = %d, want 1", got)
	}
	// Every file exists exactly once, on the new owner.
	store := cl.Metadata().Rank(1).Store()
	in, err := store.Resolve("/job")
	if err != nil {
		t.Fatalf("dst resolve: %v", err)
	}
	names, err := store.ReadDir(in.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 200 {
		t.Errorf("dst readdir = %d entries, want 200", len(names))
	}
	// The freeze window was long enough that at least one request
	// bounced and retried (the migration streams dirs over simulated
	// wire latency while the load loop runs).
	if got := c.Stats().Redirects; got == 0 {
		t.Errorf("redirects = 0, want bounced-and-retried requests during the freeze")
	}
	// The freeze revoked the client's directory cap.
	if got := cl.Metadata().Rank(0).Metrics().CapRevokes; got == 0 {
		t.Errorf("cap revokes = 0, want the freeze to revoke the load client's cap")
	}
}

// TestStaleTableRedirect is the satellite regression test: a client
// whose routing replica is no longer refreshed (unsubscribed) keeps
// working after a migration via the typed ErrWrongRank redirect — the
// bounce carries the new epoch, the client refreshes and retries.
func TestStaleTableRedirect(t *testing.T) {
	cl := NewCluster(WithMDSRanks(2))
	c := cl.NewClient("client.0")
	var dir Ino
	cl.Run(func(p Proc) {
		var err error
		if dir, err = c.MkdirAll(p, "/job", 0755); err != nil {
			t.Fatalf("mkdirall: %v", err)
		}
		if _, err := c.Create(p, dir, "before", 0644); err != nil {
			t.Fatalf("create: %v", err)
		}
	})
	// Freeze the client's routing view, then move the subtree under it.
	cl.Monitor().Unsubscribe("client.0")
	cl.Run(func(p Proc) {
		if err := cl.Migrate(p, "/job", 1); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		if _, err := c.Create(p, dir, "after", 0644); err != nil {
			t.Fatalf("create after migrate: %v", err)
		}
	})
	if got := c.Stats().Redirects; got == 0 {
		t.Fatalf("redirects = 0, want a stale-table bounce and retry")
	}
	if _, err := cl.Metadata().Rank(1).Store().Resolve("/job/after"); err != nil {
		t.Fatalf("new owner missing post-migration create: %v", err)
	}
}

// TestMigrateDecoupledClient: a decoupled subtree migrates while its
// client is between merges; the next Volatile Apply lands on the new
// owner with the same grant and the merged namespace is intact.
func TestMigrateDecoupledClient(t *testing.T) {
	cl := NewCluster(WithMDSRanks(2))
	c := cl.NewClient("client.0")
	cl.Run(func(p Proc) {
		if _, err := c.MkdirAll(p, "/dec", 0755); err != nil {
			t.Fatalf("mkdirall: %v", err)
		}
		if _, err := cl.Decouple(p, c, "/dec",
			"consistency: weak\ndurability: none\nallocated_inodes: 1000\n"); err != nil {
			t.Fatalf("decouple: %v", err)
		}
		root, _ := c.DecoupledRoot()
		for i := 0; i < 10; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("a%d", i), 0644); err != nil {
				t.Fatalf("local create: %v", err)
			}
		}
		if _, err := c.VolatileApply(p); err != nil {
			t.Fatalf("first apply: %v", err)
		}
		if err := cl.Migrate(p, "/dec", 1); err != nil {
			t.Fatalf("migrate: %v", err)
		}
		for i := 0; i < 10; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("b%d", i), 0644); err != nil {
				t.Fatalf("local create: %v", err)
			}
		}
		if _, err := c.VolatileApply(p); err != nil {
			t.Fatalf("apply after migrate: %v", err)
		}
	})
	store := cl.Metadata().Rank(1).Store()
	in, err := store.Resolve("/dec")
	if err != nil {
		t.Fatalf("dst resolve: %v", err)
	}
	names, err := store.ReadDir(in.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 20 {
		t.Errorf("dst /dec has %d entries, want 20 (both merges)", len(names))
	}
}

// TestBalancerConverges: all load lands on rank 0; the heat-driven
// balancer exports subtrees until the imbalance factor falls under its
// threshold.
func TestBalancerConverges(t *testing.T) {
	cl := NewCluster(WithMDSRanks(2))
	cl.EnableHeat(50 * time.Millisecond)
	c := cl.NewClient("client.0")
	cl.Go("load", func(p Proc) {
		dirs := make([]Ino, 4)
		for i := range dirs {
			d, err := c.MkdirAll(p, fmt.Sprintf("/job%d", i), 0755)
			if err != nil {
				t.Errorf("mkdirall: %v", err)
				return
			}
			dirs[i] = d
			if err := cl.Monitor().Place(p, fmt.Sprintf("/job%d", i), 0); err != nil {
				t.Errorf("place: %v", err)
				return
			}
		}
		for round := 0; round < 40; round++ {
			for i, d := range dirs {
				if _, err := c.Create(p, d, fmt.Sprintf("f%d-%d", round, i), 0644); err != nil {
					t.Errorf("create: %v", err)
					return
				}
			}
			p.Sleep(2 * time.Millisecond)
		}
	})
	b := cl.StartBalancer(BalancerConfig{
		Interval:  10 * time.Millisecond,
		Rounds:    8,
		Threshold: 1.3,
		MaxMoves:  2,
	})
	cl.RunAll()
	if len(b.Events()) == 0 {
		t.Fatalf("balancer took no action on a fully skewed cluster\n%s", b)
	}
	moved := 0
	for _, st := range cl.Subtrees() {
		if st.Rank == 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Errorf("no subtree ended up on rank 1\n%s", b)
	}
	samples := b.Samples()
	last := samples[len(samples)-1]
	if last.Imbalance >= 1.5 {
		t.Errorf("final imbalance = %.3f, want < 1.5\n%s", last.Imbalance, b)
	}
}
