package cudele

import (
	"sort"

	"cudele/internal/trace"
)

// Recorder collects spans and instants on simulated time; see
// internal/trace.
type Recorder = trace.Recorder

// Registry is a metric registry exportable in Prometheus text format;
// see internal/trace.
type Registry = trace.Registry

// EnableTracing attaches a trace recorder to the cluster's runtime and
// returns it. Every RPC, journal operation, RADOS round trip, and
// capability revocation records a span on the shared virtual clock.
// Tracing never charges virtual time and never consumes randomness, so
// a traced run produces byte-identical results to an untraced one.
// Call before Run; call at most once per cluster.
func (cl *Cluster) EnableTracing() *Recorder {
	rec := trace.New()
	cl.rt.SetTracer(rec)
	return rec
}

// Tracer returns the cluster's trace recorder, nil when tracing is off.
func (cl *Cluster) Tracer() *Recorder { return cl.rt.Tracer() }

// CollectMetrics gathers every daemon's counters, histograms, and
// device-utilization accounting into a fresh registry: all MDS ranks,
// the object store (per-OSD disks, fabric), the monitor, and every
// client in name order. Collection is pull-time — run it after the
// simulation (or between runs); it reads existing counters and cannot
// perturb virtual time.
func (cl *Cluster) CollectMetrics() *Registry {
	reg := trace.NewRegistry()
	cl.meta.FillMetrics(reg)
	cl.objects.FillMetrics(reg)
	cl.mon.FillMetrics(reg)
	names := make([]string, 0, len(cl.clients))
	for name := range cl.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cl.clients[name].FillMetrics(reg)
	}
	return reg
}
