package cudele

import (
	"fmt"
	"sort"
	"time"

	"cudele/internal/obs"
	"cudele/internal/trace"
)

// Recorder collects spans and instants on simulated time; see
// internal/trace.
type Recorder = trace.Recorder

// Registry is a metric registry exportable in Prometheus text format;
// see internal/trace.
type Registry = trace.Registry

// Heat is the per-subtree, per-rank load accountant; see internal/obs.
type Heat = obs.Heat

// Flight is the chaos flight recorder; see internal/obs.
type Flight = obs.Flight

// Admin is the real-backend HTTP admin listener; see internal/obs.
type Admin = obs.Admin

// EnableTracing attaches a trace recorder to the cluster's runtime and
// returns it. Every RPC, journal operation, RADOS round trip, and
// capability revocation records a span on the shared virtual clock.
// Tracing never charges virtual time and never consumes randomness, so
// a traced run produces byte-identical results to an untraced one.
// Call before Run; call at most once per cluster.
func (cl *Cluster) EnableTracing() *Recorder {
	rec := trace.New()
	cl.rt.SetTracer(rec)
	return rec
}

// Tracer returns the cluster's trace recorder, nil when tracing is off.
func (cl *Cluster) Tracer() *Recorder { return cl.rt.Tracer() }

// CollectMetrics gathers every daemon's counters, histograms, and
// device-utilization accounting into a fresh registry: all MDS ranks,
// the object store (per-OSD disks, fabric), the monitor, and every
// client in name order. Collection is pull-time — run it after the
// simulation (or between runs); it reads existing counters and cannot
// perturb virtual time.
func (cl *Cluster) CollectMetrics() *Registry {
	reg := trace.NewRegistry()
	cl.meta.FillMetrics(reg)
	cl.objects.FillMetrics(reg)
	cl.mon.FillMetrics(reg)
	names := make([]string, 0, len(cl.clients))
	for name := range cl.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cl.clients[name].FillMetrics(reg)
	}
	return reg
}

// EnableHeat attaches a per-subtree heat accountant to every metadata
// rank and returns it. Load (reads/writes/merges, bytes, queue wait) is
// recorded per placed subtree per rank with exponential decay at the
// given half-life (non-positive means obs.DefaultHalfLife). Decay runs
// on runtime time — virtual on the simulator — and, like tracing, heat
// accounting charges no time and consumes no randomness, so an
// accounted sim run stays byte-identical to an unaccounted one. Call
// before Run; call at most once per cluster.
func (cl *Cluster) EnableHeat(halfLife time.Duration) *Heat {
	h := obs.NewHeat(halfLife)
	cl.heat = h
	cl.meta.SetHeat(h)
	return h
}

// Heat returns the cluster's heat accountant, nil when accounting is off.
func (cl *Cluster) Heat() *Heat { return cl.heat }

// HeatReport snapshots the heat accountant at the current runtime time
// and aggregates it into per-rank loads and the imbalance factor. The
// zero report is returned when heat accounting is off.
func (cl *Cluster) HeatReport() obs.HeatReport {
	return obs.NewReport(cl.heat.Snapshot(int64(cl.rt.Now())))
}

// EnableFlightRecorder attaches a chaos flight recorder to the cluster's
// runtime and returns it: every daemon keeps a fixed-size ring of its
// most recent protocol events (perDaemon entries; non-positive means
// obs.DefaultFlightEvents) so a chaos-oracle failure can dump the last-N
// events before the violation. Free when off (one nil check per record
// site); recording never charges time or consumes randomness. Call
// before Run; call at most once per cluster.
func (cl *Cluster) EnableFlightRecorder(perDaemon int) *Flight {
	f := obs.NewFlight(perDaemon)
	cl.rt.SetFlight(f)
	return f
}

// Flight returns the cluster's flight recorder, nil when recording is
// off.
func (cl *Cluster) Flight() *Flight { return cl.rt.Flight() }

// adminSource adapts a Cluster to obs.Source. Scrapes run under
// Runtime.Exclusive, so an HTTP handler goroutine reads cluster state
// with the same exclusion protocol tasks enjoy — valid only on the real
// backend, whose run lock external callers may take.
type adminSource struct{ cl *Cluster }

// Metrics implements obs.Source: a fresh pull-time collection per scrape.
func (s adminSource) Metrics() (*trace.Registry, error) {
	var reg *trace.Registry
	s.cl.rt.Exclusive(func() { reg = s.cl.CollectMetrics() })
	return reg, nil
}

// Heat implements obs.Source: the current decayed heat snapshot, nil
// when heat accounting is off.
func (s adminSource) Heat() ([]obs.HeatCell, error) {
	var cells []obs.HeatCell
	s.cl.rt.Exclusive(func() {
		cells = s.cl.heat.Snapshot(int64(s.cl.rt.Now()))
	})
	return cells, nil
}

// AdminSource returns the cluster as an admin-endpoint scrape source,
// for installing into an obs.Admin that outlives individual clusters.
// Real backend only: scrapes serialize against running tasks via the
// run lock, which the simulator cannot offer concurrent callers.
func (cl *Cluster) AdminSource() obs.Source {
	if cl.Backend() != BackendReal {
		panic("cudele: AdminSource requires BackendReal")
	}
	return adminSource{cl: cl}
}

// ServeAdmin binds an HTTP admin listener on addr (":0" picks a free
// port) serving /healthz, /metrics, /heat, and /debug/pprof/, sourced
// from this cluster. Real backend only. Close the returned Admin when
// done.
func (cl *Cluster) ServeAdmin(addr string) (*Admin, error) {
	if cl.Backend() != BackendReal {
		return nil, fmt.Errorf("cudele: ServeAdmin requires BackendReal")
	}
	a, err := obs.NewAdmin(addr)
	if err != nil {
		return nil, err
	}
	a.SetSource(cl.AdminSource())
	return a, nil
}
