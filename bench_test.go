package cudele_test

import (
	"fmt"
	"testing"
	"time"

	"cudele"
	"cudele/internal/bench"
	"cudele/internal/journal"
	"cudele/internal/namespace"
	"cudele/internal/policy"
)

// Each table and figure of the paper's evaluation has a benchmark that
// regenerates it end to end through the experiment harness. Benchmarks run
// at a reduced scale so `go test -bench=.` finishes quickly; run
// `cudele-bench -scale 1.0` for paper-scale numbers. The reported
// "virt-s" metric is the virtual (simulated) time the experiment's
// workloads spanned; wall-clock ns/op measures the simulator itself.

func benchExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(id, bench.Options{Scale: scale, Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s: empty result", id)
		}
	}
}

// BenchmarkTable1Compositions regenerates Table I (the policy spectrum).
func BenchmarkTable1Compositions(b *testing.B) { benchExperiment(b, "table1", 1) }

// BenchmarkFig2CompilePhases regenerates Figure 2 (per-phase MDS load).
func BenchmarkFig2CompilePhases(b *testing.B) { benchExperiment(b, "fig2", 0.05) }

// BenchmarkFig3aJournalDispatch regenerates Figure 3a (journal dispatch
// sizes vs clients).
func BenchmarkFig3aJournalDispatch(b *testing.B) { benchExperiment(b, "fig3a", 0.01) }

// BenchmarkFig3bInterference regenerates Figure 3b (interference
// slowdown/variability).
func BenchmarkFig3bInterference(b *testing.B) { benchExperiment(b, "fig3b", 0.005) }

// BenchmarkFig3cLookupRPCs regenerates Figure 3c (lookup RPCs appearing
// after capability revocation).
func BenchmarkFig3cLookupRPCs(b *testing.B) { benchExperiment(b, "fig3c", 0.01) }

// BenchmarkFig5Mechanisms regenerates Figure 5 (per-mechanism overheads).
func BenchmarkFig5Mechanisms(b *testing.B) { benchExperiment(b, "fig5", 0.02) }

// BenchmarkFig6aParallelCreates regenerates Figure 6a (decoupled
// namespaces vs RPCs).
func BenchmarkFig6aParallelCreates(b *testing.B) { benchExperiment(b, "fig6a", 0.01) }

// BenchmarkFig6bBlockInterference regenerates Figure 6b (the
// interfere-block API).
func BenchmarkFig6bBlockInterference(b *testing.B) { benchExperiment(b, "fig6b", 0.005) }

// BenchmarkFig6cNamespaceSync regenerates Figure 6c (namespace-sync
// interval sweep).
func BenchmarkFig6cNamespaceSync(b *testing.B) { benchExperiment(b, "fig6c", 0.02) }

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationInodeCache quantifies the inode cache / capability
// path: creates with a cached directory inode cost one RPC; without it
// every create pays an extra lookup RPC (paper §IV-C).
func BenchmarkAblationInodeCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			var virt float64
			for i := 0; i < b.N; i++ {
				cl := cudele.NewCluster(cudele.WithSeed(int64(i + 1)))
				c := cl.NewClient("c0")
				interferer := cl.NewClient("intruder")
				virt += cl.Run(func(p cudele.Proc) {
					dir, _ := c.Mkdir(p, cudele.RootIno, "d", 0755)
					if !cached {
						// Force the shared regime: one interfering
						// create revokes the cap for good.
						c.Create(p, dir, "seed", 0644)
						interferer.Create(p, dir, "intruder", 0644)
						c.Create(p, dir, "post", 0644)
					}
					for k := 0; k < 500; k++ {
						c.Create(p, dir, fmt.Sprintf("f%d", k), 0644)
					}
				})
			}
			b.ReportMetric(virt/float64(b.N), "virt-s")
		})
	}
}

// BenchmarkAblationMergeArrival quantifies the paper's note that Fig 6a's
// create+merge curve is pessimistic because all client journals land on
// the metadata server at the same time (§V-B1). Staggering client start
// times spreads the journal arrivals, avoiding merge congestion.
func BenchmarkAblationMergeArrival(b *testing.B) {
	const clients = 20
	const perClient = 2000
	run := func(b *testing.B, stagger time.Duration) {
		var virt float64
		for i := 0; i < b.N; i++ {
			cl := cudele.NewCluster(cudele.WithSeed(int64(i + 1)))
			cs := make([]*cudele.Client, clients)
			for k := range cs {
				cs[k] = cl.NewClient(fmt.Sprintf("c%d", k))
			}
			eng := cl.Runtime()
			virt += cl.Run(func(p cudele.Proc) {
				for k, c := range cs {
					path := fmt.Sprintf("/j%d", k)
					c.MkdirAll(p, path, 0755)
					cl.DecouplePolicy(p, c, path, &cudele.Policy{
						Consistency: cudele.ConsWeak, Durability: cudele.DurNone,
						AllocatedInodes: perClient + 10,
					})
				}
				for k, c := range cs {
					k, c := k, c
					eng.Spawn(c.Name(), func(cp cudele.Proc) {
						cp.Sleep(time.Duration(k) * stagger)
						root, _ := c.DecoupledRoot()
						for f := 0; f < perClient; f++ {
							c.LocalCreate(cp, root, fmt.Sprintf("f%d", f), 0644)
						}
						c.VolatileApply(cp)
					})
				}
			})
		}
		b.ReportMetric(virt/float64(b.N), "virt-s")
	}
	b.Run("simultaneous", func(b *testing.B) { run(b, 0) })
	b.Run("staggered", func(b *testing.B) { run(b, 250*time.Millisecond) })
}

// BenchmarkAblationDispatchSize sweeps the journal dispatch tunable in
// isolation at a fixed load (the knob behind Fig 3a).
func BenchmarkAblationDispatchSize(b *testing.B) {
	for _, dispatch := range []int{1, 10, 30, 40} {
		b.Run(fmt.Sprintf("dispatch%d", dispatch), func(b *testing.B) {
			var virt float64
			for i := 0; i < b.N; i++ {
				cfg := cudele.DefaultConfig()
				cfg.DispatchSize = dispatch
				cfg.SegmentEvents = 64
				cl := cudele.NewCluster(cudele.WithSeed(int64(i+1)), cudele.WithConfig(cfg))
				cl.MDS().SetStream(true)
				cs := make([]*cudele.Client, 8)
				for k := range cs {
					cs[k] = cl.NewClient(fmt.Sprintf("c%d", k))
				}
				eng := cl.Runtime()
				virt += cl.Run(func(p cudele.Proc) {
					for k, c := range cs {
						k, c := k, c
						dir, _ := c.Mkdir(p, cudele.RootIno, fmt.Sprintf("d%d", k), 0755)
						eng.Spawn(c.Name(), func(cp cudele.Proc) {
							for f := 0; f < 500; f++ {
								c.Create(cp, dir, fmt.Sprintf("f%d", f), 0644)
							}
						})
					}
				})
			}
			b.ReportMetric(virt/float64(b.N), "virt-s")
		})
	}
}

// --- Substrate micro-benchmarks (real wall-clock costs) ---

// BenchmarkJournalEncode measures the journal codec's write path.
func BenchmarkJournalEncode(b *testing.B) {
	events := make([]*journal.Event, 1000)
	for i := range events {
		events[i] = &journal.Event{
			Type: journal.EvCreate, Seq: uint64(i), Client: "client.0",
			Parent: 1, Name: fmt.Sprintf("file%06d", i), Ino: uint64(1000 + i), Mode: 0644,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := journal.Encode(events); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalDecode measures the journal codec's read path.
func BenchmarkJournalDecode(b *testing.B) {
	events := make([]*journal.Event, 1000)
	for i := range events {
		events[i] = &journal.Event{
			Type: journal.EvCreate, Seq: uint64(i), Client: "client.0",
			Parent: 1, Name: fmt.Sprintf("file%06d", i), Ino: uint64(1000 + i), Mode: 0644,
		}
	}
	data, err := journal.Encode(events)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := journal.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNamespaceCreate measures raw metadata-store inserts.
func BenchmarkNamespaceCreate(b *testing.B) {
	s := namespace.NewStore()
	dir, _ := s.Mkdir(namespace.RootIno, "d", namespace.CreateAttrs{Mode: 0755})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Create(dir.Ino, fmt.Sprintf("f%d", i), namespace.CreateAttrs{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNamespaceReplay measures journal replay onto a store (the
// Volatile Apply hot path).
func BenchmarkNamespaceReplay(b *testing.B) {
	events := make([]*journal.Event, 1000)
	for i := range events {
		events[i] = &journal.Event{
			Type: journal.EvCreate, Client: "c",
			Parent: uint64(namespace.RootIno), Name: fmt.Sprintf("f%06d", i),
			Ino: uint64(1000 + i), Mode: 0644,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := namespace.NewStore()
		if _, err := journal.Replay(events, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyCompile measures the Table I compiler.
func BenchmarkPolicyCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for c := policy.ConsInvisible; c <= policy.ConsStrong; c++ {
			for d := policy.DurNone; d <= policy.DurGlobal; d++ {
				if _, err := policy.Compile(c, d); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkPoliciesFileParse measures the policies-file parser.
func BenchmarkPoliciesFileParse(b *testing.B) {
	text := "consistency: weak\ndurability: local\nallocated_inodes: 100000\ninterfere: block\n"
	for i := 0; i < b.N; i++ {
		if _, err := policy.ParseFile(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedRPCCreate measures the simulator's cost to execute
// one full RPC create (events, resources, channel handoffs).
func BenchmarkSimulatedRPCCreate(b *testing.B) {
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	eng := cl.Runtime()
	var dir cudele.Ino
	cl.Go("setup", func(p cudele.Proc) {
		dir, _ = c.Mkdir(p, cudele.RootIno, "d", 0755)
	})
	cl.RunAll()
	b.ResetTimer()
	eng.Spawn("bench", func(p cudele.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Create(p, dir, fmt.Sprintf("f%d", i), 0644); err != nil {
				b.Fatal(err)
			}
		}
	})
	eng.RunAll()
}

// BenchmarkSimulatedLocalCreate measures the simulator's cost of one
// decoupled create (append client journal).
func BenchmarkSimulatedLocalCreate(b *testing.B) {
	cl := cudele.NewCluster()
	c := cl.NewClient("c0")
	eng := cl.Runtime()
	cl.Go("setup", func(p cudele.Proc) {
		c.MkdirAll(p, "/j", 0755)
		cl.DecouplePolicy(p, c, "/j", &cudele.Policy{
			Consistency: cudele.ConsInvisible, Durability: cudele.DurNone,
			AllocatedInodes: b.N + 10,
		})
	})
	cl.RunAll()
	b.ResetTimer()
	eng.Spawn("bench", func(p cudele.Proc) {
		root, _ := c.DecoupledRoot()
		for i := 0; i < b.N; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
				b.Fatal(err)
			}
		}
	})
	eng.RunAll()
}
