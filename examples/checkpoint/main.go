// Checkpoint-restart (paper §V-B1): N clients each write a checkpoint of
// many files. Compare three subtree semantics living side by side in one
// namespace:
//
//   - /posix      strong consistency + global durability (RPCs + Stream)
//   - /batch      weak consistency + local durability (decoupled, merged)
//   - /scratch    invisible consistency + no durability (decoupled only)
//
// The decoupled subtrees finish orders of magnitude sooner — the paper's
// 91.7x headline — while POSIX applications keep their guarantees.
package main

import (
	"fmt"
	"log"

	"cudele"
)

const (
	clients      = 8
	filesPerRank = 10000
)

func runJob(mode string) float64 {
	cl := cudele.NewCluster(cudele.WithSeed(7))
	cl.MDS().SetStream(true)

	cs := make([]*cudele.Client, clients)
	for i := range cs {
		cs[i] = cl.NewClient(fmt.Sprintf("rank%02d", i))
	}
	eng := cl.Runtime()
	var jobSecs float64

	cl.Run(func(p cudele.Proc) {
		// Set up one subtree per rank under the mode's directory.
		for i, c := range cs {
			path := fmt.Sprintf("/%s/rank%02d", mode, i)
			if _, err := c.MkdirAll(p, path, 0755); err != nil {
				log.Fatalf("mkdir %s: %v", path, err)
			}
			if mode == "posix" {
				continue
			}
			pol := &cudele.Policy{
				Consistency:     cudele.ConsWeak,
				Durability:      cudele.DurLocal,
				AllocatedInodes: filesPerRank + 10,
			}
			if mode == "scratch" {
				pol.Consistency = cudele.ConsInvisible
				pol.Durability = cudele.DurNone
			}
			if _, err := cl.DecouplePolicy(p, c, path, pol); err != nil {
				log.Fatalf("decouple %s: %v", path, err)
			}
		}

		start := p.Now()
		done := make([]bool, clients)
		for i, c := range cs {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				defer func() { done[i] = true }()
				if mode == "posix" {
					dir, _ := c.Resolve(cp, fmt.Sprintf("/posix/rank%02d", i))
					for k := 0; k < filesPerRank; k++ {
						if _, err := c.Create(cp, dir, fmt.Sprintf("ckpt.%05d", k), 0644); err != nil {
							log.Fatalf("rank %d create: %v", i, err)
						}
					}
					return
				}
				root, _ := c.DecoupledRoot()
				for k := 0; k < filesPerRank; k++ {
					if _, err := c.LocalCreate(cp, root, fmt.Sprintf("ckpt.%05d", k), 0644); err != nil {
						log.Fatalf("rank %d local create: %v", i, err)
					}
				}
				if mode == "batch" {
					// Checkpoint complete: persist locally, then merge
					// so the scheduler can see it.
					if err := c.LocalPersist(cp); err != nil {
						log.Fatalf("rank %d persist: %v", i, err)
					}
					if _, err := c.VolatileApply(cp); err != nil {
						log.Fatalf("rank %d merge: %v", i, err)
					}
				}
			})
		}
		// Wait for all ranks.
		for {
			all := true
			for _, d := range done {
				all = all && d
			}
			if all {
				break
			}
			p.Sleep(1e6)
		}
		jobSecs = (p.Now() - start).Seconds()
	})
	return jobSecs
}

func main() {
	fmt.Printf("checkpoint-restart: %d ranks x %d files\n\n", clients, filesPerRank)
	posix := runJob("posix")
	batch := runJob("batch")
	scratch := runJob("scratch")

	fmt.Printf("%-34s %10s %10s\n", "subtree semantics", "seconds", "speedup")
	fmt.Printf("%-34s %10.2f %10s\n", "POSIX (rpcs+stream)", posix, "1.0x")
	fmt.Printf("%-34s %10.2f %9.1fx\n", "BatchFS-style (create+merge)", batch, posix/batch)
	fmt.Printf("%-34s %10.2f %9.1fx\n", "scratch (decoupled create only)", scratch, posix/scratch)
	fmt.Println("\nall three co-exist in one global namespace; only the scratch")
	fmt.Println("subtree gives up recoverability (client failure loses updates).")
}
