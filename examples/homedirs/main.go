// User home directories (paper §V-B2): users run jobs in their own
// directories on a shared file system. An interfering client that touches
// everyone's directories triggers capability revocations and false
// sharing, making performance slow and unpredictable. With Cudele, each
// user registers their directory with "interfere: block", and the MDS
// rejects intruders with -EBUSY, isolating the owners.
package main

import (
	"fmt"
	"log"

	"cudele"
	"cudele/internal/workload"
)

const (
	users        = 6
	filesPerUser = 3000
	intruderPer  = 200
)

// run executes the shared-home-directory workload and returns each user's
// completion seconds and how many intruder ops were rejected.
func run(block, interfere bool) ([]float64, uint64) {
	cl := cudele.NewCluster(cudele.WithSeed(11))
	cl.MDS().SetStream(true)

	owners := make([]*cudele.Client, users)
	for i := range owners {
		owners[i] = cl.NewClient(fmt.Sprintf("user%d", i))
	}
	intruder := cl.NewClient("intruder")
	times := make([]float64, users)
	eng := cl.Runtime()

	cl.Run(func(p cudele.Proc) {
		dirs := make([]cudele.Ino, users)
		for i, c := range owners {
			path := fmt.Sprintf("/home/user%d", i)
			dir, err := c.MkdirAll(p, path, 0755)
			if err != nil {
				log.Fatalf("mkdir: %v", err)
			}
			dirs[i] = dir
			if block {
				pol := &cudele.Policy{
					Consistency: cudele.ConsStrong, Durability: cudele.DurGlobal,
					AllocatedInodes: 100, Interfere: cudele.InterfereBlock,
				}
				if _, err := cl.Monitor().RegisterPolicy(p, path, pol, c.Name()); err != nil {
					log.Fatalf("register: %v", err)
				}
			}
		}
		for i, c := range owners {
			i, c := i, c
			eng.Spawn(c.Name(), func(cp cudele.Proc) {
				start := cp.Now()
				if _, _, err := workload.CreateMany(cp, c, dirs[i], filesPerUser, "result"); err != nil {
					log.Fatalf("user %d: %v", i, err)
				}
				times[i] = (cp.Now() - start).Seconds()
			})
		}
		if interfere {
			eng.Spawn("intruder", func(ip cudele.Proc) {
				ip.Sleep(2e9) // arrives 2 s into the job
				workload.Interfere(ip, intruder, dirs, intruderPer)
			})
		}
	})
	return times, cl.MDS().Metrics().Rejected
}

func summarize(label string, times []float64, rejected uint64) {
	slowest, sum := 0.0, 0.0
	for _, t := range times {
		sum += t
		if t > slowest {
			slowest = t
		}
	}
	fmt.Printf("%-28s slowest %6.2fs  mean %6.2fs  rejected %d\n",
		label, slowest, sum/float64(len(times)), rejected)
}

func main() {
	fmt.Printf("home directories: %d users x %d creates, intruder touches every dir\n\n",
		users, filesPerUser)
	t1, r1 := run(false, false)
	summarize("isolated (no interference)", t1, r1)
	t2, r2 := run(false, true)
	summarize("interference, allow", t2, r2)
	t3, r3 := run(true, true)
	summarize("interference, block (-EBUSY)", t3, r3)
	fmt.Println("\nblocking restores near-isolated performance; the intruder's")
	fmt.Println("creates fail with 'device busy' instead of revoking capabilities.")
}
