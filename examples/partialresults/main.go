// Partial results (paper §V-B3): a long-running decoupled job writes
// updates at memory speed while end-users check progress with ls. The
// decoupled namespace is invisible to them, so the client runs a
// "namespace sync" every few seconds, shipping batches of updates back to
// the global namespace. The job pays a small pause per sync (a fork), and
// the end-user's ls shows files appearing over time.
package main

import (
	"fmt"
	"log"
	"time"

	"cudele"
)

const (
	updates      = 60000
	syncInterval = 2 * time.Second
)

func main() {
	cl := cudele.NewCluster(cudele.WithSeed(3))
	writer := cl.NewClient("job")
	watcher := cl.NewClient("enduser")
	eng := cl.Runtime()

	cl.Run(func(p cudele.Proc) {
		if _, err := writer.MkdirAll(p, "/exp", 0755); err != nil {
			log.Fatalf("mkdir: %v", err)
		}
		if _, err := cl.Decouple(p, writer, "/exp", fmt.Sprintf(`
consistency: invisible
durability: local
allocated_inodes: %d
`, updates+10)); err != nil {
			log.Fatalf("decouple: %v", err)
		}
		root, _ := writer.DecoupledRoot()
		jobDone := false

		// The end-user polls progress with ls every second — the
		// notoriously heavy-weight practice the paper describes.
		eng.Spawn("enduser", func(wp cudele.Proc) {
			for !jobDone {
				names, err := watcher.ReadDir(wp, root)
				if err == nil {
					fmt.Printf("[%6.2fs] enduser: ls /exp -> %5d files (%.0f%% done)\n",
						wp.Now().Seconds(), len(names), 100*float64(len(names))/updates)
				}
				wp.Sleep(time.Second)
			}
		})

		// The job writes updates locally and syncs on an interval.
		start := p.Now()
		last := p.Now()
		for i := 0; i < updates; i++ {
			if _, err := writer.LocalCreate(p, root, fmt.Sprintf("result.%06d", i), 0644); err != nil {
				log.Fatalf("create: %v", err)
			}
			if time.Duration(p.Now()-last) >= syncInterval {
				pause, shipped, err := writer.SyncNow(p)
				if err != nil {
					log.Fatalf("sync: %v", err)
				}
				fmt.Printf("[%6.2fs] job: namespace sync shipped %d updates (paused %v)\n",
					p.Now().Seconds(), shipped, pause.Round(time.Millisecond))
				last = p.Now()
			}
		}
		writer.SyncNow(p)
		// The job is done once the final sync's bytes are drained; the
		// MDS applies the tail in the background.
		if err := writer.WaitSyncDrain(p); err != nil {
			log.Fatalf("drain: %v", err)
		}
		elapsed := (p.Now() - start).Seconds()
		// Wait for full visibility before the final ls.
		if err := writer.WaitSyncVisible(p); err != nil {
			log.Fatalf("visible: %v", err)
		}
		jobDone = true
		base := float64(updates) * cl.Config().ClientAppendTime.Seconds()
		pauses, paused := writer.SyncStats()
		fmt.Printf("\njob wrote %d updates in %.2fs (base %.2fs, overhead %.1f%%, %d sync pauses totalling %v)\n",
			updates, elapsed, base, 100*(elapsed-base)/base, pauses, paused.Round(time.Millisecond))
		names, _ := watcher.ReadDir(p, root)
		fmt.Printf("final ls: %d files visible in the global namespace\n", len(names))
	})
}
