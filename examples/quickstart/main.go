// Quickstart: build a cluster, use POSIX-style RPCs, decouple a subtree
// with a policies file, work locally, and merge back — the whole Cudele
// lifecycle in one file.
package main

import (
	"fmt"
	"log"

	"cudele"
)

func main() {
	// A cluster is 1 monitor, 1 metadata server, 3 OSDs on a
	// deterministic virtual clock.
	cl := cudele.NewCluster(cudele.WithSeed(42))
	c := cl.NewClient("client.0")

	elapsed := cl.Run(func(p cudele.Proc) {
		// 1. Plain POSIX-style metadata ops over RPCs (strong
		// consistency, every op is a round trip to the MDS).
		dir, err := c.MkdirAll(p, "/home/alice/job", 0755)
		if err != nil {
			log.Fatalf("mkdir: %v", err)
		}
		if _, err := c.Create(p, dir, "input.txt", 0644); err != nil {
			log.Fatalf("create: %v", err)
		}
		fmt.Printf("[%8.3fs] created /home/alice/job/input.txt over RPCs\n", p.Now().Seconds())

		// 2. Decouple the subtree with a policies file (paper §III-C):
		// weak consistency + local durability is the BatchFS cell of
		// Table I.
		entry, err := cl.Decouple(p, c, "/home/alice/job", `
consistency: weak
durability: local
allocated_inodes: 10000
interfere: block
`)
		if err != nil {
			log.Fatalf("decouple: %v", err)
		}
		comp, _ := entry.Policy.Composition()
		fmt.Printf("[%8.3fs] decoupled %s -> %s (inode grant [%d,+%d))\n",
			p.Now().Seconds(), entry.Path, comp, entry.GrantLo, entry.GrantN)

		// 3. Work locally at memory speed: ~11,000 creates/s instead of
		// ~650/s, no RPCs at all.
		root, _ := c.DecoupledRoot()
		start := p.Now()
		for i := 0; i < 5000; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("ckpt.%04d", i), 0644); err != nil {
				log.Fatalf("local create: %v", err)
			}
		}
		rate := 5000 / (p.Now() - start).Seconds()
		fmt.Printf("[%8.3fs] 5000 decoupled creates at %.0f creates/s\n", p.Now().Seconds(), rate)

		// 4. Run the policy's mechanism composition: persist the
		// journal to local disk, then merge it into the global
		// namespace (Volatile Apply).
		if err := c.RunComposition(p, comp); err != nil {
			log.Fatalf("composition: %v", err)
		}
		fmt.Printf("[%8.3fs] journal persisted locally and merged\n", p.Now().Seconds())

		// 5. Everyone sees the results in the global namespace now.
		names, err := c.ReadDir(p, dir)
		if err != nil {
			log.Fatalf("readdir: %v", err)
		}
		fmt.Printf("[%8.3fs] /home/alice/job has %d entries (first: %s)\n",
			p.Now().Seconds(), len(names), names[0])
	})
	fmt.Printf("done in %.3f virtual seconds\n", elapsed)
}
