package cudele

import (
	"errors"
	"fmt"
	"testing"

	"cudele/internal/namespace"
	"cudele/internal/policy"
)

func TestQuickstartFlow(t *testing.T) {
	cl := NewCluster()
	c := cl.NewClient("client.0")
	cl.Run(func(p Proc) {
		dir, err := c.MkdirAll(p, "/home/alice/job", 0755)
		if err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		if _, err := c.Create(p, dir, "input.txt", 0644); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		entry, err := cl.Decouple(p, c, "/home/alice/job",
			"consistency: weak\ndurability: local\nallocated_inodes: 1000\n")
		if err != nil {
			t.Errorf("decouple: %v", err)
			return
		}
		if entry.GrantN != 1000 {
			t.Errorf("grant = %d", entry.GrantN)
		}
		root, _ := c.DecoupledRoot()
		for i := 0; i < 100; i++ {
			if _, err := c.LocalCreate(p, root, fmt.Sprintf("ckpt.%d", i), 0644); err != nil {
				t.Errorf("local create: %v", err)
				return
			}
		}
		comp, _ := entry.Policy.Composition()
		if err := c.RunComposition(p, comp); err != nil {
			t.Errorf("composition: %v", err)
			return
		}
		// Merged results visible globally.
		if _, err := cl.MDS().Store().Resolve("/home/alice/job/ckpt.99"); err != nil {
			t.Errorf("merged file missing: %v", err)
		}
	})
}

func TestDecoupledMergeEqualsRPCNamespace(t *testing.T) {
	// The headline invariant: "decoupled: create + merge" ends in the
	// same namespace as plain RPC creates.
	build := func(decoupled bool) *Cluster {
		cl := NewCluster(WithSeed(7))
		c := cl.NewClient("c0")
		cl.Run(func(p Proc) {
			dir, _ := c.MkdirAll(p, "/job", 0755)
			if decoupled {
				if _, err := cl.Decouple(p, c, "/job", "consistency: weak\ndurability: none\nallocated_inodes: 500\n"); err != nil {
					t.Errorf("decouple: %v", err)
					return
				}
				root, _ := c.DecoupledRoot()
				sub, _ := c.LocalMkdir(p, root, "sub", 0755)
				for i := 0; i < 200; i++ {
					c.LocalCreate(p, root, fmt.Sprintf("f%04d", i), 0644)
				}
				c.LocalCreate(p, sub, "deep", 0644)
				if _, err := c.VolatileApply(p); err != nil {
					t.Errorf("merge: %v", err)
				}
			} else {
				sub, _ := c.Mkdir(p, dir, "sub", 0755)
				for i := 0; i < 200; i++ {
					c.Create(p, dir, fmt.Sprintf("f%04d", i), 0644)
				}
				c.Create(p, sub, "deep", 0644)
			}
		})
		return cl
	}
	rpc := build(false)
	dec := build(true)
	if !namespace.Equal(rpc.MDS().Store(), dec.MDS().Store()) {
		t.Fatal("decoupled+merge namespace differs from RPC namespace")
	}
}

func TestAllTableICellsEndToEnd(t *testing.T) {
	// Execute every Table I composition on a live cluster and verify the
	// semantics each cell promises.
	for _, cons := range []policy.Consistency{ConsInvisible, ConsWeak, ConsStrong} {
		for _, dur := range []policy.Durability{DurNone, DurLocal, DurGlobal} {
			cons, dur := cons, dur
			name := fmt.Sprintf("%v-%v", cons, dur)
			t.Run(name, func(t *testing.T) {
				cl := NewCluster()
				c := cl.NewClient("c0")
				cl.Run(func(p Proc) {
					c.MkdirAll(p, "/job", 0755)
					cl.MDS().SaveStore(p) // seed object store for nonvolatile paths
					pol := &Policy{Consistency: cons, Durability: dur, AllocatedInodes: 100}
					if _, err := cl.DecouplePolicy(p, c, "/job", pol); err != nil {
						t.Errorf("decouple: %v", err)
						return
					}
					comp, err := pol.Composition()
					if err != nil {
						t.Errorf("composition: %v", err)
						return
					}
					// Workload: strong consistency uses RPCs; others
					// write the client journal.
					dir, _ := c.Resolve(p, "/job")
					if cons == ConsStrong {
						for i := 0; i < 10; i++ {
							if _, err := c.Create(p, dir, fmt.Sprintf("f%d", i), 0644); err != nil {
								t.Errorf("rpc create: %v", err)
								return
							}
						}
					} else {
						root, _ := c.DecoupledRoot()
						for i := 0; i < 10; i++ {
							if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
								t.Errorf("local create: %v", err)
								return
							}
						}
					}
					if err := c.RunComposition(p, comp); err != nil {
						t.Errorf("run composition: %v", err)
						return
					}
					// Verify per-cell semantics.
					_, globallyVisible := cl.MDS().Store().Resolve("/job/f9")
					switch cons {
					case ConsStrong, ConsWeak:
						if globallyVisible != nil {
							t.Errorf("updates not globally visible: %v", globallyVisible)
						}
					case ConsInvisible:
						if globallyVisible == nil {
							t.Error("invisible consistency leaked updates into the global namespace")
						}
					}
					if dur == DurLocal && cons != ConsStrong {
						if _, ok := c.LocalJournalFile(); !ok {
							t.Error("local durability did not persist the journal")
						}
					}
					if dur == DurGlobal && cons != ConsStrong {
						if _, err := c.FetchGlobalJournal(p, "c0"); err != nil {
							t.Errorf("global durability did not persist the journal: %v", err)
						}
					}
					if dur == DurGlobal && cons == ConsStrong {
						if !cl.MDS().StreamEnabled() {
							t.Error("strong/global did not enable Stream")
						}
					}
				})
			})
		}
	}
}

func TestDynamicSemanticsChange(t *testing.T) {
	// Paper §VII: change a subtree from weaker to stronger guarantees
	// without moving data.
	cl := NewCluster()
	c := cl.NewClient("c0")
	cl.Run(func(p Proc) {
		c.MkdirAll(p, "/hdfs", 0755)
		if _, err := cl.Decouple(p, c, "/hdfs", "consistency: weak\ndurability: local\nallocated_inodes: 50\n"); err != nil {
			t.Errorf("decouple: %v", err)
			return
		}
		root, _ := c.DecoupledRoot()
		for i := 0; i < 10; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("part-%05d", i), 0644)
		}
		// Merge, then tighten semantics to POSIX.
		if _, err := c.VolatileApply(p); err != nil {
			t.Errorf("merge: %v", err)
			return
		}
		if _, err := cl.Decouple(p, c, "/hdfs", "consistency: strong\ndurability: global\n"); err != nil {
			t.Errorf("re-register: %v", err)
			return
		}
		// The data never moved; new ops are strongly consistent RPCs.
		dir, _ := c.Resolve(p, "/hdfs")
		if _, err := c.Create(p, dir, "_SUCCESS", 0644); err != nil {
			t.Errorf("posix create: %v", err)
		}
		names, _ := cl.MDS().Store().ReadDir(dir)
		if len(names) != 11 {
			t.Errorf("names = %d, want 11", len(names))
		}
	})
	if cl.Monitor().Epoch() != 2 {
		t.Fatalf("epoch = %d", cl.Monitor().Epoch())
	}
}

func TestClusterDeterminism(t *testing.T) {
	runOnce := func() float64 {
		cl := NewCluster(WithSeed(99))
		cs := make([]*Client, 4)
		for i := range cs {
			cs[i] = cl.NewClient(fmt.Sprintf("c%d", i))
		}
		for i, c := range cs {
			i, c := i, c
			cl.Go("w", func(p Proc) {
				dir, _ := c.Mkdir(p, RootIno, fmt.Sprintf("d%d", i), 0755)
				for k := 0; k < 200; k++ {
					c.Create(p, dir, fmt.Sprintf("f%d", k), 0644)
				}
			})
		}
		return cl.RunAll()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("nondeterministic cluster run: %v vs %v", a, b)
	}
}

func TestDuplicateClientPanics(t *testing.T) {
	cl := NewCluster()
	cl.NewClient("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate client did not panic")
		}
	}()
	cl.NewClient("x")
}

func TestInvalidConfigPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumOSDs = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewCluster(WithConfig(cfg))
}

func TestClientRegistry(t *testing.T) {
	cl := NewCluster()
	c := cl.NewClient("x")
	got, ok := cl.Client("x")
	if !ok || got != c {
		t.Fatal("client registry broken")
	}
	if _, ok := cl.Client("y"); ok {
		t.Fatal("phantom client")
	}
}

func TestMustComposition(t *testing.T) {
	comp := MustComposition("rpcs+stream")
	if comp.String() != "rpcs+stream" {
		t.Fatalf("comp = %q", comp)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad DSL did not panic")
		}
	}()
	MustComposition("nope")
}

func TestRecoupleUnknown(t *testing.T) {
	cl := NewCluster()
	cl.Run(func(p Proc) {
		if err := cl.Recouple(p, "/ghost"); err == nil {
			t.Error("recoupling unknown subtree succeeded")
		}
	})
}

func TestDecoupleErrorPropagation(t *testing.T) {
	cl := NewCluster()
	c := cl.NewClient("c0")
	cl.Run(func(p Proc) {
		if _, err := cl.Decouple(p, c, "/missing", ""); !errors.Is(err, namespace.ErrNotExist) {
			t.Errorf("err = %v", err)
		}
		if _, err := cl.Decouple(p, c, "/", "bad policies"); err == nil {
			t.Error("bad policies accepted")
		}
	})
}

func TestCompileTableIExport(t *testing.T) {
	comp, err := CompileTableI(ConsWeak, DurLocal)
	if err != nil || comp.String() != "append_client_journal+local_persist+volatile_apply" {
		t.Fatalf("compile = %q, %v", comp, err)
	}
}

func TestParsePoliciesExport(t *testing.T) {
	pol, err := ParsePolicies("interfere: block\n")
	if err != nil || pol.Interfere != InterfereBlock {
		t.Fatalf("parse = %+v, %v", pol, err)
	}
}
