// Command cudele-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cudele-bench [-scale 1.0] [-seed 1] [-csv] [experiment ...]
//
// With no arguments (or the id "all") it runs every experiment; see
// -list for the registry. Scale 1.0 is paper scale (100K creates/client,
// 1M updates for fig6c); smaller scales preserve the normalized shapes
// and run much faster.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cudele/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "deterministic simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.IDs()
	} else {
		// "all" anywhere in the list expands to the full registry.
		expanded := make([]string, 0, len(ids))
		for _, id := range ids {
			if id == "all" {
				expanded = append(expanded, bench.IDs()...)
			} else {
				expanded = append(expanded, id)
			}
		}
		ids = expanded
	}
	opts := bench.Options{Scale: *scale, Seed: *seed}

	exit := 0
	for _, id := range ids {
		if _, ok := bench.Lookup(id); !ok {
			fmt.Fprintf(os.Stderr, "cudele-bench: unknown experiment %q\nvalid ids: all %s\n",
				id, strings.Join(bench.IDs(), " "))
			exit = 1
			continue
		}
		start := time.Now()
		res, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cudele-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(res.Render())
			fmt.Printf("(%s wall clock)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	os.Exit(exit)
}
