// Command cudele-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cudele-bench [-scale 1.0] [-seed 1] [-parallel 0] [-csv] [-json] [experiment ...]
//
// With no arguments (or the id "all") it runs every experiment; see
// -list for the registry. Scale 1.0 is paper scale (100K creates/client,
// 1M updates for fig6c); smaller scales preserve the normalized shapes
// and run much faster.
//
// -parallel sets how many of an experiment's independent simulation runs
// execute concurrently (0 = GOMAXPROCS, 1 = sequential). Every run owns
// its own engine and seed, so the output is byte-identical for any value.
//
// -json additionally writes one BENCH_<id>.json per experiment (into
// -outdir) with the wall clock and the full table — the machine-readable
// baseline `make bench` commits under results/.
//
// -trace FILE records every simulation run as spans on the shared virtual
// clock and writes one Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev); each run becomes its own process group. -metrics FILE
// writes a Prometheus text dump of every daemon's counters, histograms,
// and device utilizations, one `run` label per simulation. Observation is
// passive: tables are byte-identical with these flags on or off.
//
// -backend real executes the workload on real goroutines, wall clocks,
// and (with -datadir, default a temp dir) fsynced object files instead
// of the simulator, side by side with the simulated prediction for the
// same grid point. Only fig3a supports real mode; "all" under
// -backend=real means "all real-capable experiments". Real tables carry
// machine-dependent wall-clock columns, so they are reported (and, with
// -json, written as BENCH_fig3a-real.json) but never replace the
// committed sim baselines.
//
// -chaos N runs N seeded fault-injection schedules (starting at -seed,
// cycling through all nine consistency x durability cells) against the
// policy-contract checker instead of the experiments, and exits non-zero
// if any schedule violates its contract. A failing seed reproduces
// exactly with -chaos-replay SEED, which runs that one schedule and
// prints its fault plan — and, since every schedule carries a flight
// recorder, the failure report includes the last events (ops, faults,
// crashes) each daemon saw before the violation. -chaos-dumps DIR
// additionally writes one flight-dump file per failing seed.
// -chaos-cycle 2 widens the seed-to-cell mapping to fifteen cells —
// the nine originals plus speculative and strong-eventual crossed with
// every durability level; cycle-2 failures replay with the same flag.
//
// -heat enables per-subtree heat accounting on every run. Like -trace
// and -metrics it is passive: tables are byte-identical with it on.
//
// -admin ADDR (real backend only) serves a live admin endpoint while the
// experiments run: /metrics (Prometheus text), /heat (the decayed
// per-subtree heat map as JSON), /healthz, and /debug/pprof. Each real
// run installs itself as the scrape source for its duration; use :0 to
// bind an ephemeral port (the bound address prints on stdout).
// -admin-linger DUR keeps the endpoint serving that long after the last
// experiment finishes, so CI can scrape a completed run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cudele"
	"cudele/internal/bench"
	"cudele/internal/chaos"
	"cudele/internal/obs"
)

// benchJSON is the schema of a BENCH_<id>.json baseline file.
type benchJSON struct {
	ID               string     `json:"id"`
	Title            string     `json:"title"`
	Scale            float64    `json:"scale"`
	Seed             int64      `json:"seed"`
	Parallel         int        `json:"parallel"`
	WallClockSeconds float64    `json:"wall_clock_seconds"`
	Columns          []string   `json:"columns"`
	Rows             [][]string `json:"rows"`
	Notes            []string   `json:"notes,omitempty"`
}

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "deterministic simulation seed")
	parallel := flag.Int("parallel", 0, "concurrent simulation runs per experiment (0 = GOMAXPROCS, 1 = sequential)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	jsonOut := flag.Bool("json", false, "also write BENCH_<id>.json per experiment")
	outdir := flag.String("outdir", ".", "directory for -json output")
	list := flag.Bool("list", false, "list experiments and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of every simulation run to this file")
	metricsPath := flag.String("metrics", "", "write a Prometheus text dump of every run's daemon metrics to this file")
	chaosN := flag.Int("chaos", 0, "run N fault-injection schedules (seeds -seed..-seed+N-1) instead of experiments")
	chaosReplay := flag.Int64("chaos-replay", 0, "replay one fault-injection schedule by seed and print its plan")
	chaosDumps := flag.String("chaos-dumps", "", "chaos mode: write one flight-recorder dump file per failing seed into this directory")
	chaosCycle := flag.Int("chaos-cycle", 1, "chaos mode: seed-to-cell cycle (1 = the nine Table I cells, 2 = fifteen cells incl. speculative and strong-eventual)")
	backendName := flag.String("backend", "sim", "execution backend: sim (deterministic simulator) or real (goroutines, wall clock, fsync)")
	dataDir := flag.String("datadir", "", "real backend: directory for fsynced object files (default: a fresh temp dir)")
	heat := flag.Bool("heat", false, "enable per-subtree heat accounting on every run (passive: tables are byte-identical)")
	adminAddr := flag.String("admin", "", "real backend: serve /metrics, /heat, /healthz, /debug/pprof on this address (:0 for an ephemeral port)")
	adminLinger := flag.Duration("admin-linger", 0, "keep the -admin endpoint serving this long after the last experiment")
	flag.Parse()

	backend, err := cudele.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cudele-bench: %v\n", err)
		os.Exit(2)
	}
	if *dataDir != "" && backend != cudele.BackendReal {
		fmt.Fprintln(os.Stderr, "cudele-bench: -datadir requires -backend=real")
		os.Exit(2)
	}
	if *adminAddr != "" && backend != cudele.BackendReal {
		fmt.Fprintln(os.Stderr, "cudele-bench: -admin requires -backend=real (the simulator has no wall clock to serve on)")
		os.Exit(2)
	}
	if *adminLinger != 0 && *adminAddr == "" {
		fmt.Fprintln(os.Stderr, "cudele-bench: -admin-linger requires -admin")
		os.Exit(2)
	}
	if *chaosDumps != "" && *chaosN == 0 && *chaosReplay == 0 {
		fmt.Fprintln(os.Stderr, "cudele-bench: -chaos-dumps requires -chaos or -chaos-replay")
		os.Exit(2)
	}
	if *chaosCycle < 1 || *chaosCycle > 2 {
		fmt.Fprintln(os.Stderr, "cudele-bench: -chaos-cycle must be 1 or 2")
		os.Exit(2)
	}

	if *chaosReplay != 0 {
		os.Exit(runChaos(chaos.Seeds(*chaosReplay, 1), 1, *chaosCycle, true, *chaosDumps))
	}
	if *chaosN > 0 {
		os.Exit(runChaos(chaos.Seeds(*seed, *chaosN), *parallel, *chaosCycle, false, *chaosDumps))
	}

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			mark := ""
			if e.Utilization {
				mark = "  [utilization columns]"
			}
			fmt.Printf("%-12s %s%s\n", id, e.Title, mark)
		}
		return
	}

	// Under -backend=real the universe of experiments shrinks to the
	// real-capable set; "all" (and an empty list) means exactly that set.
	universe := bench.IDs()
	if backend == cudele.BackendReal {
		universe = bench.RealIDs()
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = universe
	} else {
		// "all" anywhere in the list expands to the full universe.
		expanded := make([]string, 0, len(ids))
		for _, id := range ids {
			if id == "all" {
				expanded = append(expanded, universe...)
			} else {
				expanded = append(expanded, id)
			}
		}
		ids = expanded
	}
	opts := bench.Options{Scale: *scale, Seed: *seed, Workers: *parallel, Heat: *heat}
	if *tracePath != "" || *metricsPath != "" {
		opts.Sink = bench.NewSink()
	}
	var admin *obs.Admin
	if *adminAddr != "" {
		admin, err = obs.NewAdmin(*adminAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cudele-bench: admin: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("admin: listening on http://%s (endpoints: /metrics /heat /healthz /debug/pprof/)\n", admin.Addr())
		opts.Admin = admin
	}
	var tmpDataDir string
	if backend == cudele.BackendReal {
		if *dataDir == "" {
			dir, err := os.MkdirTemp("", "cudele-bench-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "cudele-bench: %v\n", err)
				os.Exit(1)
			}
			tmpDataDir = dir
			*dataDir = dir
		}
		opts.DataDir = *dataDir
	}

	exit := 0
	for _, id := range ids {
		if _, ok := bench.Lookup(id); !ok {
			fmt.Fprintf(os.Stderr, "cudele-bench: unknown experiment %q\nvalid ids: all %s\n",
				id, strings.Join(bench.IDs(), " "))
			exit = 1
			continue
		}
		start := time.Now()
		var res *bench.Result
		var err error
		if backend == cudele.BackendReal {
			res, err = bench.RunReal(id, opts)
		} else {
			res, err = bench.Run(id, opts)
		}
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cudele-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Print(res.Render())
			fmt.Printf("(%s wall clock)\n\n", wall.Round(time.Millisecond))
		}
		if *jsonOut {
			if err := writeJSON(*outdir, res, opts, wall); err != nil {
				fmt.Fprintf(os.Stderr, "cudele-bench: %s: %v\n", id, err)
				exit = 1
			}
		}
	}
	if *tracePath != "" {
		if err := writeSink(*tracePath, opts.Sink.WriteChrome); err != nil {
			fmt.Fprintf(os.Stderr, "cudele-bench: trace: %v\n", err)
			exit = 1
		}
	}
	if *metricsPath != "" {
		if err := writeSink(*metricsPath, opts.Sink.WriteMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "cudele-bench: metrics: %v\n", err)
			exit = 1
		}
	}
	if admin != nil {
		if *adminLinger > 0 {
			fmt.Printf("admin: lingering %s on http://%s (last run stays scrapeable)\n", *adminLinger, admin.Addr())
			time.Sleep(*adminLinger)
		}
		admin.Close()
	}
	if tmpDataDir != "" {
		os.RemoveAll(tmpDataDir)
	}
	os.Exit(exit)
}

// runChaos executes the fault-injection schedules and reports verdicts.
// With verbose set (replay mode) the plan prints even on success, so a
// passing replay still shows what was exercised. With dumpDir set, each
// failing seed's fault plan, violations, and flight-recorder dump are
// written to chaos-flight-<seed>.txt there (the CI failure artifact).
func runChaos(seeds []int64, workers, cycle int, verbose bool, dumpDir string) int {
	results := chaos.RunManyCycle(seeds, workers, cycle)
	if verbose {
		for _, r := range results {
			fmt.Printf("%s\n\n", r.PlanText)
		}
	}
	failed := chaos.Report(os.Stdout, results)
	if dumpDir != "" && failed > 0 {
		if err := writeChaosDumps(dumpDir, results); err != nil {
			fmt.Fprintf(os.Stderr, "cudele-bench: chaos dumps: %v\n", err)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// writeChaosDumps writes one flight-dump file per failing schedule.
func writeChaosDumps(dir string, results []chaos.Result) error {
	if err := os.MkdirAll(dir, 0755); err != nil {
		return err
	}
	for _, r := range results {
		if r.Passed() {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s\n", r.PlanText)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "violation: %s\n", v)
		}
		fmt.Fprintf(&b, "\nflight recorder (last events before the violation):\n%s", r.FlightDump)
		if r.Cycle >= 2 {
			fmt.Fprintf(&b, "\nreproduce: cudele-bench -chaos-cycle %d -chaos-replay %d\n", r.Cycle, r.Seed)
		} else {
			fmt.Fprintf(&b, "\nreproduce: cudele-bench -chaos-replay %d\n", r.Seed)
		}
		path := filepath.Join(dir, fmt.Sprintf("chaos-flight-%d.txt", r.Seed))
		if err := os.WriteFile(path, []byte(b.String()), 0644); err != nil {
			return err
		}
		fmt.Printf("chaos: wrote %s\n", path)
	}
	return nil
}

// writeSink streams one sink export into path.
func writeSink(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(dir string, res *bench.Result, opts bench.Options, wall time.Duration) error {
	if err := os.MkdirAll(dir, 0755); err != nil {
		return err
	}
	out := benchJSON{
		ID: res.ID, Title: res.Title,
		Scale: opts.Scale, Seed: opts.Seed, Parallel: opts.Workers,
		WallClockSeconds: wall.Seconds(),
		Columns:          res.Columns, Rows: res.Rows, Notes: res.Notes,
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+res.ID+".json")
	return os.WriteFile(path, append(data, '\n'), 0644)
}
