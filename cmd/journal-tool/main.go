// Command journal-tool inspects and manipulates Cudele journal files,
// mirroring the CephFS journal tool that the Cudele client library is
// built from (paper §IV-B).
//
// Usage:
//
//	journal-tool inspect <file>           summarize a journal
//	journal-tool dump <file>              print every event
//	journal-tool erase <file> <from> <to> splice out events by seq
//	journal-tool roundtrip <file>         decode + re-encode (format check)
//	journal-tool demo <file>              write a small demo journal
package main

import (
	"fmt"
	"os"
	"strconv"

	"cudele/internal/journal"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  journal-tool inspect <file>
  journal-tool dump <file>
  journal-tool erase <file> <fromSeq> <toSeq>
  journal-tool roundtrip <file>
  journal-tool demo <file>
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	var err error
	switch cmd {
	case "inspect":
		err = inspect(path)
	case "dump":
		err = dump(path)
	case "erase":
		if len(os.Args) != 5 {
			usage()
		}
		err = erase(path, os.Args[3], os.Args[4])
	case "roundtrip":
		err = roundtrip(path)
	case "demo":
		err = demo(path)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "journal-tool: %v\n", err)
		os.Exit(1)
	}
}

func inspect(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := journal.Inspect(data)
	if err != nil {
		return err
	}
	fmt.Print(s.String())
	return nil
}

func dump(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	out, err := journal.Dump(data)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func erase(path, fromS, toS string) error {
	from, err := strconv.ParseUint(fromS, 10, 64)
	if err != nil {
		return fmt.Errorf("bad from seq %q", fromS)
	}
	to, err := strconv.ParseUint(toS, 10, 64)
	if err != nil {
		return fmt.Errorf("bad to seq %q", toS)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	out, erased, err := journal.Erase(data, from, to)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, out, 0644); err != nil {
		return err
	}
	fmt.Printf("erased %d event(s)\n", erased)
	return nil
}

func roundtrip(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := journal.Decode(data)
	if err != nil {
		return err
	}
	again, err := journal.Encode(events)
	if err != nil {
		return err
	}
	fmt.Printf("decoded %d event(s), re-encoded %d bytes (original %d)\n",
		len(events), len(again), len(data))
	return nil
}

func demo(path string) error {
	j := journal.New(1024)
	j.Append(&journal.Event{Type: journal.EvMkdir, Client: "client.0", Parent: 1, Name: "job", Ino: 1 << 41, Mode: 0755})
	for i := 0; i < 5; i++ {
		j.Append(&journal.Event{Type: journal.EvCreate, Client: "client.0",
			Parent: 1 << 41, Name: fmt.Sprintf("ckpt.%d", i), Ino: uint64(1<<41 + 1 + i), Mode: 0644})
	}
	j.Append(&journal.Event{Type: journal.EvAllocRange, Client: "client.0", Ino: 1 << 41, Size: 100})
	data, err := j.Export()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0644); err != nil {
		return err
	}
	fmt.Printf("wrote %d event(s), %d bytes\n", j.Len(), len(data))
	return nil
}
