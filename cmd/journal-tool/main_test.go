package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenSession runs the full tool workflow — demo, inspect, dump,
// roundtrip, erase, inspect, dump — and compares the combined stdout
// byte-for-byte against the committed golden transcript. The demo
// journal is fixed, so any change to the binary format, the inspect
// summary, or the dump rendering shows up here.
func TestGoldenSession(t *testing.T) {
	want, err := os.ReadFile("testdata/session.golden")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.journal")

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	for _, step := range []struct {
		name string
		fn   func() error
	}{
		{"demo", func() error { return demo(path) }},
		{"inspect", func() error { return inspect(path) }},
		{"dump", func() error { return dump(path) }},
		{"roundtrip", func() error { return roundtrip(path) }},
		{"erase", func() error { return erase(path, "2", "3") }},
		{"inspect", func() error { return inspect(path) }},
		{"dump", func() error { return dump(path) }},
	} {
		if err := step.fn(); err != nil {
			os.Stdout = old
			t.Fatalf("%s: %v", step.name, err)
		}
	}
	w.Close()
	got := <-done
	os.Stdout = old
	if got != string(want) {
		t.Errorf("transcript drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestDemoInspectDumpEraseRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.journal")
	if err := demo(path); err != nil {
		t.Fatalf("demo: %v", err)
	}
	if err := inspect(path); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := dump(path); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if err := roundtrip(path); err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
	if err := erase(path, "1", "2"); err != nil {
		t.Fatalf("erase: %v", err)
	}
	// Erased file still parses.
	if err := inspect(path); err != nil {
		t.Fatalf("inspect after erase: %v", err)
	}
}

func TestEraseBadArgs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	if err := demo(path); err != nil {
		t.Fatal(err)
	}
	if err := erase(path, "x", "2"); err == nil {
		t.Error("bad from accepted")
	}
	if err := erase(path, "1", "y"); err == nil {
		t.Error("bad to accepted")
	}
}

func TestMissingFile(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope")
	for name, fn := range map[string]func(string) error{
		"inspect":   inspect,
		"dump":      dump,
		"roundtrip": roundtrip,
	} {
		if err := fn(missing); err == nil {
			t.Errorf("%s on missing file succeeded", name)
		}
	}
}

func TestCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("not a journal"), 0644); err != nil {
		t.Fatal(err)
	}
	if err := inspect(path); err == nil {
		t.Error("corrupt file inspected")
	}
}
