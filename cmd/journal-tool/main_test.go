package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDemoInspectDumpEraseRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.journal")
	if err := demo(path); err != nil {
		t.Fatalf("demo: %v", err)
	}
	if err := inspect(path); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := dump(path); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if err := roundtrip(path); err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
	if err := erase(path, "1", "2"); err != nil {
		t.Fatalf("erase: %v", err)
	}
	// Erased file still parses.
	if err := inspect(path); err != nil {
		t.Fatalf("inspect after erase: %v", err)
	}
}

func TestEraseBadArgs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	if err := demo(path); err != nil {
		t.Fatal(err)
	}
	if err := erase(path, "x", "2"); err == nil {
		t.Error("bad from accepted")
	}
	if err := erase(path, "1", "y"); err == nil {
		t.Error("bad to accepted")
	}
}

func TestMissingFile(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope")
	for name, fn := range map[string]func(string) error{
		"inspect":   inspect,
		"dump":      dump,
		"roundtrip": roundtrip,
	} {
		if err := fn(missing); err == nil {
			t.Errorf("%s on missing file succeeded", name)
		}
	}
}

func TestCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("not a journal"), 0644); err != nil {
		t.Fatal(err)
	}
	if err := inspect(path); err == nil {
		t.Error("corrupt file inspected")
	}
}
