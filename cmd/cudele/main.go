// Command cudele is a small scripted shell over a simulated Cudele
// cluster: it reads one command per line (from files or stdin) and
// executes them against a fresh cluster, printing results. It exists so
// the framework can be poked interactively without writing Go.
//
// Commands:
//
//	mkdir <path>                 create directories (mkdir -p)
//	create <path>                create a file via RPCs
//	ls <path>                    list a directory
//	stat <path>                  print inode attributes
//	rm <path>                    unlink a file
//	decouple <path> [k=v ...]    register a subtree (consistency=weak
//	                             durability=local inodes=1000 interfere=block
//	                             rank=1)
//	pin <path> <rank>            place a subtree on a metadata rank
//	migrate <path> <rank>        online-export a subtree to another rank
//	lcreate <name>               create in the decoupled subtree
//	lmkdir <name>                mkdir in the decoupled subtree
//	merge                        merge the client journal (volatile-apply,
//	                             or the speculative/strong-eventual merge
//	                             when the subtree's cell selects one)
//	persist local|global         persist the client journal
//	recouple <path>              drop a subtree's policy
//	scrub                        check namespace consistency
//	repair                       fix what scrub found
//	status                       monitor + MDS state
//	time                         print virtual time
//
// Lines starting with # are comments.
//
// -trace FILE writes a Chrome trace-event JSON (Perfetto-loadable) of
// the session's spans on simulated time; -metrics FILE writes a
// Prometheus text dump of every daemon's counters and utilizations.
//
// -backend selects the execution backend: "sim" (the default; virtual
// time, deterministic, objects in memory) or "real" (goroutines and
// wall clocks). With -backend=real, -datadir DIR keeps RADOS objects as
// fsynced files under DIR, so object state (persisted client journals,
// globally persisted metadata) survives across invocations.
//
// -admin ADDR (real backend only) serves the cluster's live admin
// endpoint while the session runs: /metrics, /heat, /healthz, and
// /debug/pprof. The bound address prints on stdout (use :0 for an
// ephemeral port).
//
// -rebalance (default off) enables per-subtree heat accounting and runs
// the heat-driven balancer alongside the session: overloaded ranks
// export subtrees to cold ones automatically, and the balancer's
// convergence table prints when the session ends. Off by default so
// scripted sessions (and committed baselines) never see a migration
// they did not ask for.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"strconv"
	"strings"

	"cudele"
	"cudele/internal/namespace"
	"cudele/internal/policy"
)

// options is the parsed command line.
type options struct {
	seed        int64
	ranks       int
	backend     cudele.Backend
	dataDir     string
	adminAddr   string
	rebalance   bool
	tracePath   string
	metricsPath string
	scripts     []string
}

// parseFlags parses argv (without the program name) into options.
func parseFlags(argv []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("cudele", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.ranks, "ranks", 1, "metadata ranks")
	backend := fs.String("backend", "sim", "execution backend: sim (deterministic simulator) or real (goroutines, wall clock)")
	fs.StringVar(&o.dataDir, "datadir", "", "real backend only: directory for fsynced object files (RADOS object state survives across runs)")
	fs.StringVar(&o.adminAddr, "admin", "", "real backend only: serve /metrics, /heat, /healthz, /debug/pprof on this address (:0 for an ephemeral port)")
	fs.BoolVar(&o.rebalance, "rebalance", false, "run the heat-driven subtree balancer during the session (default off; prints its convergence table at exit)")
	fs.StringVar(&o.tracePath, "trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the session to this file")
	fs.StringVar(&o.metricsPath, "metrics", "", "write a Prometheus text dump of daemon metrics to this file")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	if o.ranks < 1 {
		return nil, fmt.Errorf("-ranks must be at least 1, got %d", o.ranks)
	}
	b, err := cudele.ParseBackend(*backend)
	if err != nil {
		return nil, err
	}
	o.backend = b
	if o.dataDir != "" && o.backend != cudele.BackendReal {
		return nil, fmt.Errorf("-datadir requires -backend=real (the simulator keeps objects in memory)")
	}
	if o.adminAddr != "" && o.backend != cudele.BackendReal {
		return nil, fmt.Errorf("-admin requires -backend=real (the simulator has no wall clock to serve on)")
	}
	o.scripts = fs.Args()
	return o, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "cudele: %v\n", err)
		os.Exit(2)
	}
	seed, ranks := &opts.seed, &opts.ranks
	tracePath, metricsPath := &opts.tracePath, &opts.metricsPath

	var in io.Reader = os.Stdin
	if len(opts.scripts) > 0 {
		f, err := os.Open(opts.scripts[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "cudele: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	lines, err := readLines(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cudele: %v\n", err)
		os.Exit(1)
	}

	copts := []cudele.Option{cudele.WithSeed(*seed), cudele.WithMDSRanks(*ranks)}
	if opts.backend == cudele.BackendReal {
		copts = append(copts, cudele.WithBackend(cudele.BackendReal))
		if opts.dataDir != "" {
			copts = append(copts, cudele.WithDataDir(opts.dataDir))
		}
	}
	cl := cudele.NewCluster(copts...)
	if *tracePath != "" {
		cl.EnableTracing()
	}
	var admin *cudele.Admin
	if opts.adminAddr != "" {
		cl.EnableHeat(0)
		a, err := cl.ServeAdmin(opts.adminAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cudele: admin: %v\n", err)
			os.Exit(1)
		}
		admin = a
		fmt.Printf("admin: listening on http://%s (endpoints: /metrics /heat /healthz /debug/pprof/)\n", admin.Addr())
	}
	var balancer *cudele.Balancer
	if opts.rebalance {
		if cl.Heat() == nil {
			cl.EnableHeat(0)
		}
		balancer = cl.StartBalancer(cudele.BalancerConfig{})
	}
	c := cl.NewClient("client.0")
	exit := 0
	cl.Run(func(p cudele.Proc) {
		for lineNo, line := range lines {
			if err := execute(cl, c, p, line); err != nil {
				fmt.Printf("line %d (%s): error: %v\n", lineNo+1, line, err)
				exit = 1
			}
		}
	})
	if balancer != nil {
		fmt.Print(balancer.String())
	}
	if *tracePath != "" {
		if err := writeFile(*tracePath, cl.Tracer().WriteChrome); err != nil {
			fmt.Fprintf(os.Stderr, "cudele: trace: %v\n", err)
			exit = 1
		}
	}
	if *metricsPath != "" {
		if err := writeFile(*metricsPath, cl.CollectMetrics().WritePrometheus); err != nil {
			fmt.Fprintf(os.Stderr, "cudele: metrics: %v\n", err)
			exit = 1
		}
	}
	if admin != nil {
		admin.Close()
	}
	cl.Close()
	os.Exit(exit)
}

// writeFile streams one export into path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readLines(in io.Reader) ([]string, error) {
	var out []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

func execute(cl *cudele.Cluster, c *cudele.Client, p cudele.Proc, line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		if _, err := c.MkdirAll(p, args[0], 0755); err != nil {
			return err
		}
		fmt.Printf("mkdir %s\n", args[0])
	case "create":
		if err := need(1); err != nil {
			return err
		}
		dirPath, name := path.Split(args[0])
		dir, err := c.Resolve(p, dirPath)
		if err != nil {
			return err
		}
		ino, err := c.Create(p, dir, name, 0644)
		if err != nil {
			return err
		}
		fmt.Printf("created %s (ino %d)\n", args[0], ino)
	case "ls":
		if err := need(1); err != nil {
			return err
		}
		dir, err := c.Resolve(p, args[0])
		if err != nil {
			return err
		}
		names, err := c.ReadDir(p, dir)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", args[0], strings.Join(names, " "))
	case "stat":
		if err := need(1); err != nil {
			return err
		}
		ino, err := c.Resolve(p, args[0])
		if err != nil {
			return err
		}
		st, err := c.Stat(p, ino)
		if err != nil {
			return err
		}
		kind := "file"
		if st.IsDir {
			kind = "dir"
		}
		fmt.Printf("%s: ino=%d type=%s mode=%o size=%d\n", args[0], st.Ino, kind, st.Mode, st.Size)
	case "rm":
		if err := need(1); err != nil {
			return err
		}
		dirPath, name := path.Split(args[0])
		dir, err := c.Resolve(p, dirPath)
		if err != nil {
			return err
		}
		if err := c.Unlink(p, dir, name); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", args[0])
	case "decouple":
		if err := need(1); err != nil {
			return err
		}
		text, err := policiesText(args[1:])
		if err != nil {
			return err
		}
		e, err := cl.Decouple(p, c, args[0], text)
		if err != nil {
			return err
		}
		comp, _ := e.Policy.Composition()
		fmt.Printf("decoupled %s epoch=%d inodes=[%d,+%d) %s\n",
			e.Path, e.Epoch, e.GrantLo, e.GrantN, comp)
	case "lcreate", "lmkdir":
		if err := need(1); err != nil {
			return err
		}
		root, err := c.DecoupledRoot()
		if err != nil {
			return err
		}
		var ino namespace.Ino
		if cmd == "lmkdir" {
			ino, err = c.LocalMkdir(p, root, args[0], 0755)
		} else {
			ino, err = c.LocalCreate(p, root, args[0], 0644)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s %s (ino %d, decoupled)\n", cmd, args[0], ino)
	case "merge":
		// Dispatch on the decoupled subtree's consistency cell so the
		// shell exercises the same merge path the policy compiled to.
		switch c.MergeMode() {
		case policy.ConsSpeculative:
			n, conflicts, err := c.SpeculativeApply(p)
			if err != nil {
				return err
			}
			fmt.Printf("merged %d event(s), %d rolled back\n", n, len(conflicts))
		case policy.ConsStrongEventual:
			n, err := c.ConvergeApply(p)
			if err != nil {
				return err
			}
			fmt.Printf("merged %d event(s) (convergent)\n", n)
		default:
			n, err := c.VolatileApply(p)
			if err != nil {
				return err
			}
			fmt.Printf("merged %d event(s)\n", n)
		}
	case "persist":
		if err := need(1); err != nil {
			return err
		}
		switch args[0] {
		case "local":
			if err := c.LocalPersist(p); err != nil {
				return err
			}
		case "global":
			if err := c.GlobalPersist(p); err != nil {
				return err
			}
		default:
			return fmt.Errorf("persist wants local or global, not %q", args[0])
		}
		fmt.Printf("persisted journal (%s)\n", args[0])
	case "pin":
		if err := need(2); err != nil {
			return err
		}
		rank, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad rank %q", args[1])
		}
		if err := cl.Monitor().Place(p, args[0], rank); err != nil {
			return err
		}
		fmt.Printf("pinned %s to rank %d\n", args[0], rank)
	case "migrate":
		if err := need(2); err != nil {
			return err
		}
		rank, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad rank %q", args[1])
		}
		if err := cl.Migrate(p, args[0], rank); err != nil {
			return err
		}
		st := cl.Metadata().SubtreeFor(args[0])
		fmt.Printf("migrated %s to rank %d (epoch %d, move %d)\n", args[0], rank, st.Epoch, st.Moves)
	case "recouple":
		if err := need(1); err != nil {
			return err
		}
		if err := cl.Recouple(p, args[0]); err != nil {
			return err
		}
		fmt.Printf("recoupled %s\n", args[0])
	case "scrub":
		problems := cl.MDS().Store().Check()
		if len(problems) == 0 {
			fmt.Println("scrub: namespace healthy")
			break
		}
		for _, pr := range problems {
			fmt.Printf("scrub: %s\n", pr)
		}
	case "repair":
		actions := cl.MDS().Store().Repair()
		if len(actions) == 0 {
			fmt.Println("repair: nothing to do")
		}
		for _, a := range actions {
			fmt.Printf("repair: %s\n", a)
		}
	case "status":
		fmt.Print(cl.Monitor().Describe())
		meta := cl.Metadata()
		for i := 0; i < meta.Ranks(); i++ {
			m := meta.Rank(i).Metrics()
			fmt.Printf("mds.%d: %d requests, %d journaled, %d merged, %d revokes, %d rejected\n",
				i, m.Requests, m.Journaled, m.Merged, m.CapRevokes, m.Rejected)
		}
	case "time":
		fmt.Printf("t=%.6fs\n", p.Now().Seconds())
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// policiesText converts k=v arguments into a policies file.
func policiesText(kvs []string) (string, error) {
	var b strings.Builder
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", fmt.Errorf("bad policy argument %q (want k=v)", kv)
		}
		switch k {
		case "consistency", "durability", "interfere":
			fmt.Fprintf(&b, "%s: %s\n", k, v)
		case "inodes":
			if _, err := strconv.Atoi(v); err != nil {
				return "", fmt.Errorf("bad inodes %q", v)
			}
			fmt.Fprintf(&b, "allocated_inodes: %s\n", v)
		case "rank":
			if _, err := strconv.Atoi(v); err != nil {
				return "", fmt.Errorf("bad rank %q", v)
			}
			fmt.Fprintf(&b, "mds_rank: %s\n", v)
		default:
			return "", fmt.Errorf("unknown policy key %q", k)
		}
	}
	return b.String(), nil
}
