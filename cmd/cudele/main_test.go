package main

import (
	"strings"
	"testing"

	"cudele"
)

func TestPoliciesText(t *testing.T) {
	text, err := policiesText([]string{"consistency=weak", "durability=local", "inodes=500", "interfere=block"})
	if err != nil {
		t.Fatalf("policiesText: %v", err)
	}
	for _, want := range []string{"consistency: weak", "durability: local", "allocated_inodes: 500", "interfere: block"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in %q", want, text)
		}
	}
	for _, bad := range [][]string{
		{"consistency"}, // no '='
		{"inodes=lots"}, // non-integer
		{"colour=blue"}, // unknown key
	} {
		if _, err := policiesText(bad); err == nil {
			t.Errorf("policiesText(%v) accepted", bad)
		}
	}
}

func TestReadLines(t *testing.T) {
	in := strings.NewReader("# comment\n\nmkdir /a\n  ls /a  \n")
	lines, err := readLines(in)
	if err != nil {
		t.Fatalf("readLines: %v", err)
	}
	if len(lines) != 2 || lines[0] != "mkdir /a" || lines[1] != "ls /a" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestExecuteScript(t *testing.T) {
	cl := cudele.NewCluster()
	c := cl.NewClient("client.0")
	script := []string{
		"mkdir /home/a",
		"create /home/a/f",
		"stat /home/a/f",
		"ls /home/a",
		"decouple /home/a consistency=weak durability=local inodes=50",
		"lmkdir sub",
		"lcreate x",
		"persist local",
		"merge",
		"ls /home/a",
		"recouple /home/a",
		"rm /home/a/f",
		"scrub",
		"repair",
		"status",
		"time",
	}
	cl.Run(func(p *cudele.Proc) {
		for _, line := range script {
			if err := execute(cl, c, p, line); err != nil {
				t.Errorf("execute %q: %v", line, err)
				return
			}
		}
	})
	if _, err := cl.MDS().Store().Resolve("/home/a/x"); err != nil {
		t.Fatalf("merged file missing: %v", err)
	}
}

func TestExecuteErrors(t *testing.T) {
	cl := cudele.NewCluster()
	c := cl.NewClient("client.0")
	cl.Run(func(p *cudele.Proc) {
		bad := []string{
			"frobnicate /x",     // unknown command
			"mkdir",             // missing arg
			"create /missing/f", // bad path
			"ls /missing",       // bad path
			"merge",             // not decoupled
			"persist sideways",  // bad mode
			"recouple /never",   // unknown subtree
			"decouple /missing", // bad path
			"lcreate x",         // not decoupled
			"stat /missing",     // bad path
		}
		for _, line := range bad {
			if err := execute(cl, c, p, line); err == nil {
				t.Errorf("execute %q succeeded", line)
			}
		}
	})
}
