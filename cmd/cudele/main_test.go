package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"cudele"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fn()
	w.Close()
	out := <-done
	os.Stdout = old
	return out
}

// TestGoldenSession replays testdata/session.txt against a fresh cluster
// and compares the full transcript byte-for-byte with the committed
// golden file. The simulation is deterministic, so any drift in inode
// numbering, policy compilation, merge counts, or virtual time shows up
// here first.
func TestGoldenSession(t *testing.T) {
	script, err := os.Open("testdata/session.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer script.Close()
	lines, err := readLines(script)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/session.golden")
	if err != nil {
		t.Fatal(err)
	}
	got := captureStdout(t, func() {
		cl := cudele.NewCluster()
		c := cl.NewClient("client.0")
		cl.Run(func(p cudele.Proc) {
			for _, line := range lines {
				if err := execute(cl, c, p, line); err != nil {
					t.Errorf("execute %q: %v", line, err)
				}
			}
		})
	})
	if got != string(want) {
		t.Errorf("session transcript drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestParseFlags smoke-tests the command line surface.
func TestParseFlags(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil || o.seed != 1 || o.ranks != 1 || o.backend != cudele.BackendSim || len(o.scripts) != 0 {
		t.Fatalf("defaults = %+v, %v", o, err)
	}
	o, err = parseFlags([]string{"-seed", "7", "-ranks", "2", "-trace", "t.json", "-metrics", "m.prom", "script.txt"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if o.seed != 7 || o.ranks != 2 || o.tracePath != "t.json" ||
		o.metricsPath != "m.prom" || len(o.scripts) != 1 || o.scripts[0] != "script.txt" {
		t.Fatalf("parsed = %+v", o)
	}
	o, err = parseFlags([]string{"-backend", "real", "-datadir", "/tmp/objs"})
	if err != nil || o.backend != cudele.BackendReal || o.dataDir != "/tmp/objs" {
		t.Fatalf("real backend parse = %+v, %v", o, err)
	}
	for _, bad := range [][]string{
		{"-seed", "many"},         // non-integer seed
		{"-ranks", "0"},           // no ranks at all
		{"-bogus"},                // unknown flag
		{"-backend", "warp"},      // unknown backend
		{"-datadir", "/tmp/objs"}, // datadir without -backend=real
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) accepted", bad)
		}
	}
}

func TestPoliciesText(t *testing.T) {
	text, err := policiesText([]string{"consistency=weak", "durability=local", "inodes=500", "interfere=block"})
	if err != nil {
		t.Fatalf("policiesText: %v", err)
	}
	for _, want := range []string{"consistency: weak", "durability: local", "allocated_inodes: 500", "interfere: block"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in %q", want, text)
		}
	}
	for _, bad := range [][]string{
		{"consistency"}, // no '='
		{"inodes=lots"}, // non-integer
		{"colour=blue"}, // unknown key
	} {
		if _, err := policiesText(bad); err == nil {
			t.Errorf("policiesText(%v) accepted", bad)
		}
	}
}

func TestReadLines(t *testing.T) {
	in := strings.NewReader("# comment\n\nmkdir /a\n  ls /a  \n")
	lines, err := readLines(in)
	if err != nil {
		t.Fatalf("readLines: %v", err)
	}
	if len(lines) != 2 || lines[0] != "mkdir /a" || lines[1] != "ls /a" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestExecuteScript(t *testing.T) {
	cl := cudele.NewCluster()
	c := cl.NewClient("client.0")
	script := []string{
		"mkdir /home/a",
		"create /home/a/f",
		"stat /home/a/f",
		"ls /home/a",
		"decouple /home/a consistency=weak durability=local inodes=50",
		"lmkdir sub",
		"lcreate x",
		"persist local",
		"merge",
		"ls /home/a",
		"recouple /home/a",
		"rm /home/a/f",
		"scrub",
		"repair",
		"status",
		"time",
	}
	cl.Run(func(p cudele.Proc) {
		for _, line := range script {
			if err := execute(cl, c, p, line); err != nil {
				t.Errorf("execute %q: %v", line, err)
				return
			}
		}
	})
	if _, err := cl.MDS().Store().Resolve("/home/a/x"); err != nil {
		t.Fatalf("merged file missing: %v", err)
	}
}

func TestExecuteErrors(t *testing.T) {
	cl := cudele.NewCluster()
	c := cl.NewClient("client.0")
	cl.Run(func(p cudele.Proc) {
		bad := []string{
			"frobnicate /x",     // unknown command
			"mkdir",             // missing arg
			"create /missing/f", // bad path
			"ls /missing",       // bad path
			"merge",             // not decoupled
			"persist sideways",  // bad mode
			"recouple /never",   // unknown subtree
			"decouple /missing", // bad path
			"lcreate x",         // not decoupled
			"stat /missing",     // bad path
		}
		for _, line := range bad {
			if err := execute(cl, c, p, line); err == nil {
				t.Errorf("execute %q succeeded", line)
			}
		}
	})
}
