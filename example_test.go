package cudele_test

import (
	"fmt"

	"cudele"
)

// Example walks the complete Cudele lifecycle: POSIX-style RPC metadata
// operations, decoupling a subtree with a policies file, working against
// the client-local journal, and merging back into the global namespace.
func Example() {
	cl := cudele.NewCluster(cudele.WithSeed(1))
	c := cl.NewClient("client.0")

	cl.Run(func(p cudele.Proc) {
		// Strong consistency over RPCs.
		dir, _ := c.MkdirAll(p, "/home/alice/job", 0755)
		c.Create(p, dir, "input.txt", 0644)

		// Decouple the subtree: weak consistency, local durability —
		// the BatchFS cell of Table I.
		entry, err := cl.Decouple(p, c, "/home/alice/job",
			"consistency: weak\ndurability: local\nallocated_inodes: 1000\n")
		if err != nil {
			fmt.Println("decouple:", err)
			return
		}
		comp, _ := entry.Policy.Composition()
		fmt.Println("composition:", comp)

		// Create files at memory speed, then run the composition.
		root, _ := c.DecoupledRoot()
		for i := 0; i < 100; i++ {
			c.LocalCreate(p, root, fmt.Sprintf("ckpt.%03d", i), 0644)
		}
		if err := c.RunComposition(p, comp); err != nil {
			fmt.Println("composition failed:", err)
			return
		}

		// The merged files are now globally visible.
		names, _ := c.ReadDir(p, dir)
		fmt.Println("entries:", len(names))
	})

	// Output:
	// composition: append_client_journal+local_persist+volatile_apply
	// entries: 101
}

// ExampleCluster_DecouplePolicy shows the allow/block interference API:
// a subtree owner blocks other clients, which see -EBUSY.
func ExampleCluster_DecouplePolicy() {
	cl := cudele.NewCluster()
	owner := cl.NewClient("owner")
	intruder := cl.NewClient("intruder")

	cl.Run(func(p cudele.Proc) {
		owner.MkdirAll(p, "/mine", 0755)
		pol := &cudele.Policy{
			Consistency:     cudele.ConsInvisible,
			Durability:      cudele.DurLocal,
			AllocatedInodes: 100,
			Interfere:       cudele.InterfereBlock,
		}
		cl.DecouplePolicy(p, owner, "/mine", pol)

		dir, _ := intruder.Resolve(p, "/mine")
		_, err := intruder.Create(p, dir, "x", 0644)
		fmt.Println("intruder create failed:", err != nil)
	})

	// Output:
	// intruder create failed: true
}
