package cudele

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"cudele/internal/obs"
)

// TestBackendSmokeObservability drives the full live observability plane
// on the real backend: heat accounting on, the admin endpoint serving,
// and a scraper goroutine hitting /heat and /metrics concurrently with
// the running workload (under -race in CI, this is the Exclusive-vs-task
// safety test). Afterwards the live /heat document must match the
// cluster's own post-run heat report.
func TestBackendSmokeObservability(t *testing.T) {
	cl := NewCluster(WithSeed(7), WithBackend(BackendReal))
	defer cl.Close()
	cl.EnableHeat(time.Minute) // long half-life: decay negligible over the run
	admin, err := cl.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()

	fetch := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if code, body := fetch("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Scrape concurrently with the workload.
	done := make(chan struct{})
	scraped := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-done:
				scraped <- n
				return
			default:
			}
			if code, _ := fetch("/heat"); code == 200 {
				n++
			}
			if code, _ := fetch("/metrics"); code == 200 {
				n++
			}
		}
	}()

	c := cl.NewClient("c0")
	cl.Run(func(p Proc) {
		dir, err := c.MkdirAll(p, "/hot/a", 0755)
		if err != nil {
			t.Errorf("mkdirall: %v", err)
			return
		}
		for i := 0; i < 50; i++ {
			if _, err := c.Create(p, dir, fmt.Sprintf("f.%02d", i), 0644); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
	})
	close(done)
	if n := <-scraped; n == 0 {
		t.Error("no successful scrapes while the workload ran")
	}

	// The live /heat document must match the cluster's post-run report:
	// same cells, loads within the sliver of decay between the two reads.
	code, body := fetch("/heat")
	if code != 200 {
		t.Fatalf("/heat = %d", code)
	}
	var live obs.HeatReport
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatalf("/heat does not parse: %v\n%s", err, body)
	}
	local := cl.HeatReport()
	if len(live.Cells) == 0 || len(live.Cells) != len(local.Cells) {
		t.Fatalf("live /heat has %d cells, local report %d", len(live.Cells), len(local.Cells))
	}
	for i := range live.Cells {
		lv, lc := live.Cells[i], local.Cells[i]
		if lv.Subtree != lc.Subtree || lv.Rank != lc.Rank {
			t.Errorf("cell %d: live (%s,%d) vs local (%s,%d)", i, lv.Subtree, lv.Rank, lc.Subtree, lc.Rank)
			continue
		}
		if lc.Load > 0 && math.Abs(lv.Load-lc.Load)/lc.Load > 0.02 {
			t.Errorf("cell (%s,%d): live load %.2f vs local %.2f (> 2%% apart)",
				lv.Subtree, lv.Rank, lv.Load, lc.Load)
		}
	}
	if live.Imbalance <= 0 {
		t.Errorf("live imbalance = %g, want > 0", live.Imbalance)
	}

	if code, body := fetch("/metrics"); code != 200 || len(body) == 0 {
		t.Errorf("post-run /metrics = %d with %d bytes", code, len(body))
	}
}
