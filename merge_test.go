package cudele

import (
	"fmt"
	"testing"
	"time"
)

// concurrentMergeRun drives two decoupled clients that Volatile Apply
// against the same rank at the same instant through the streamed merge
// pipeline, and reports the run's observable outcome.
func concurrentMergeRun(t *testing.T, filesA, filesB int) (elapsed float64, spread time.Duration, jobs int) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MergeChunkEvents = 64
	cfg.MergeAdmitMax = 2
	// Shrink the flat per-job merge setup (100 ms of CPU at calibration)
	// so the measured chunk waits reflect the scheduler's interleaving,
	// not the competitor's one-time admission cost landing mid-stream.
	cfg.MDSMergeSetup = time.Millisecond
	cl := NewCluster(WithConfig(cfg), WithSeed(7))
	a := cl.NewClient("client.a")
	b := cl.NewClient("client.b")

	cl.Run(func(p Proc) {
		for _, setup := range []struct {
			c    *Client
			path string
		}{{a, "/ja"}, {b, "/jb"}} {
			if _, err := setup.c.MkdirAll(p, setup.path, 0755); err != nil {
				t.Errorf("mkdirall %s: %v", setup.path, err)
				return
			}
			if _, err := cl.Decouple(p, setup.c, setup.path,
				"consistency: weak\ndurability: none\nallocated_inodes: 10000\n"); err != nil {
				t.Errorf("decouple %s: %v", setup.path, err)
				return
			}
		}
	})

	merge := func(c *Client, files int) func(p Proc) {
		return func(p Proc) {
			root, _ := c.DecoupledRoot()
			for i := 0; i < files; i++ {
				if _, err := c.LocalCreate(p, root, fmt.Sprintf("f%d", i), 0644); err != nil {
					t.Errorf("%s create %d: %v", c.Name(), i, err)
					return
				}
			}
			if n, err := c.VolatileApply(p); err != nil || n != files {
				t.Errorf("%s apply = %d, %v; want %d", c.Name(), n, err, files)
			}
		}
	}
	cl.Go("merge.a", merge(a, filesA))
	cl.Go("merge.b", merge(b, filesB))
	elapsed = cl.RunAll()

	// Both journals merged into one correct global namespace.
	for _, name := range []string{
		fmt.Sprintf("/ja/f%d", filesA-1),
		fmt.Sprintf("/jb/f%d", filesB-1),
	} {
		if _, err := cl.MDS().Store().Resolve(name); err != nil {
			t.Errorf("%s missing after concurrent merge: %v", name, err)
		}
	}
	spread, jobs = cl.MDS().MergeFairness()
	return elapsed, time.Duration(spread), jobs
}

func TestConcurrentChunkedMergesAreFairAndDeterministic(t *testing.T) {
	const filesA, filesB = 200, 320
	elapsed, spread, jobs := concurrentMergeRun(t, filesA, filesB)
	if jobs != 2 {
		t.Fatalf("streamed merge jobs = %d, want 2", jobs)
	}
	// Fairness: round-robin chunk interleaving keeps the two jobs'
	// buffering delays close even though one journal is 60% larger. A
	// run-to-completion schedule would make the loser's chunks wait for
	// the whole winning journal (~16 ms of congested apply time at the
	// calibrated 82 us/event); the scheduler bounds the spread to about
	// one chunk's service time.
	if limit := 12 * time.Millisecond; spread > limit {
		t.Errorf("chunk-wait spread = %v, want <= %v", spread, limit)
	}

	// Determinism: an identical cluster replays the identical schedule.
	elapsed2, spread2, jobs2 := concurrentMergeRun(t, filesA, filesB)
	if elapsed2 != elapsed || spread2 != spread || jobs2 != jobs {
		t.Fatalf("replay diverged: elapsed %v vs %v, spread %v vs %v, jobs %d vs %d",
			elapsed2, elapsed, spread2, spread, jobs2, jobs)
	}
}
