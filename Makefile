GO ?= go

.PHONY: all build test race vet fmt-check bench bench-seq fuzz-short ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench regenerates every table at a CI-friendly scale, in parallel, and
# refreshes the machine-readable baselines under results/. The tables are
# byte-identical to bench-seq (see internal/bench/runner.go).
bench:
	$(GO) run ./cmd/cudele-bench -scale 0.05 -json -outdir results all

bench-seq:
	$(GO) run ./cmd/cudele-bench -scale 0.05 -parallel 1 -json -outdir results all

# fuzz-short runs the journal decoder fuzzer for a bounded burst — long
# enough to hit mutated corpus inputs, short enough for CI.
fuzz-short:
	$(GO) test ./internal/journal -run='^FuzzDecode$$' -fuzz=FuzzDecode -fuzztime=10s

ci: fmt-check vet build test
