GO ?= go

.PHONY: all build test race vet fmt-check bench bench-seq bench-real fuzz-short chaos ci

all: build test

build:
	$(GO) build ./...

# test is the tier-1 gate: vet runs first so an unsound change fails
# before any suite does.
test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench regenerates every table at a CI-friendly scale, in parallel, and
# refreshes the machine-readable baselines under results/. The tables are
# byte-identical to bench-seq (see internal/bench/runner.go).
bench:
	$(GO) run ./cmd/cudele-bench -scale 0.05 -json -outdir results all

bench-seq:
	$(GO) run ./cmd/cudele-bench -scale 0.05 -parallel 1 -json -outdir results all

# bench-real runs fig3a on the real backend (goroutines, wall clocks,
# fsynced object files) side by side with its simulated prediction. The
# wall-clock columns are machine-dependent, so the output goes to
# results/real/ and is not a committed baseline.
bench-real:
	$(GO) run ./cmd/cudele-bench -backend real -scale 0.01 \
		-datadir results/real/objects -json -outdir results/real fig3a

# fuzz-short runs the journal fuzzers for a bounded burst — long enough
# to hit mutated corpus inputs, short enough for CI.
fuzz-short:
	$(GO) test ./internal/journal -run='^FuzzDecode$$' -fuzz=FuzzDecode -fuzztime=10s
	$(GO) test ./internal/journal -run='^FuzzCursorExport$$' -fuzz=FuzzCursorExport -fuzztime=10s

# chaos runs the seeded fault-injection harness — 64 consecutive seeds
# cover every cell of the consistency x durability matrix several times —
# with the race detector on. A failing seed prints its fault plan and
# reproduces exactly with: go run ./cmd/cudele-bench -chaos-replay SEED
chaos:
	$(GO) run -race ./cmd/cudele-bench -chaos 64 -seed 1

ci: fmt-check vet build test
